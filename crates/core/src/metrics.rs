//! Evaluation metrics (paper §4).

use verifai_lake::InstanceId;
use verifai_llm::Verdict;

/// Running accuracy counter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accuracy {
    /// Correct decisions.
    pub correct: usize,
    /// Total decisions.
    pub total: usize,
}

impl Accuracy {
    /// Record one decision.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// The accuracy value (0 when nothing recorded).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ({}/{})", self.value(), self.correct, self.total)
    }
}

/// Recall@k over one query: 1 if any relevant id appears in the top-k
/// retrieved, else 0. The paper evaluates retrieval "using only the recall
/// metric" because each query has very few relevant instances.
pub fn recall_at_k(retrieved: &[InstanceId], relevant: &[InstanceId], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hit = retrieved.iter().take(k).any(|id| relevant.contains(id));
    if hit {
        1.0
    } else {
        0.0
    }
}

/// The paper's Verifier-correctness rule (§4, "Evaluation Metric for
/// Verifier"): a decision is correct when
///
/// 1. the evidence supports the object and the verifier says verified;
/// 2. the evidence refutes it and the verifier says refuted;
/// 3. the evidence is unrelated and the verifier says not-related — **or**,
///    for binary verifiers like PASTA that can only answer true/false,
///    "refuted" also counts as correct in this case.
pub fn paper_correct(expected: Verdict, actual: Verdict, binary_verifier: bool) -> bool {
    if expected == actual {
        return true;
    }
    binary_verifier && expected == Verdict::NotRelated && actual == Verdict::Refuted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts() {
        let mut a = Accuracy::default();
        a.record(true);
        a.record(false);
        a.record(true);
        assert_eq!(a.value(), 2.0 / 3.0);
        assert_eq!(a.to_string(), "0.67 (2/3)");
        let mut b = Accuracy::default();
        b.record(true);
        a.merge(b);
        assert_eq!(a.correct, 3);
        assert_eq!(a.total, 4);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        assert_eq!(Accuracy::default().value(), 0.0);
    }

    #[test]
    fn recall_basic() {
        let retrieved =
            vec![InstanceId::Tuple(5), InstanceId::Tuple(9), InstanceId::Tuple(1)];
        let relevant = vec![InstanceId::Tuple(9)];
        assert_eq!(recall_at_k(&retrieved, &relevant, 3), 1.0);
        assert_eq!(recall_at_k(&retrieved, &relevant, 1), 0.0);
        assert_eq!(recall_at_k(&retrieved, &[], 3), 0.0);
    }

    #[test]
    fn paper_rule_case3_binary() {
        use Verdict::*;
        // Ternary verifier must say NotRelated.
        assert!(paper_correct(NotRelated, NotRelated, false));
        assert!(!paper_correct(NotRelated, Refuted, false));
        // Binary verifier gets credit for Refuted on unrelated evidence.
        assert!(paper_correct(NotRelated, Refuted, true));
        assert!(!paper_correct(NotRelated, Verified, true));
        // Cases 1-2 are strict for everyone.
        assert!(paper_correct(Verified, Verified, true));
        assert!(!paper_correct(Verified, Refuted, true));
        assert!(!paper_correct(Refuted, Verified, false));
    }
}
