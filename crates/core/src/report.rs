//! Report formatting: paper-style text tables and JSON artifacts.

use crate::experiments::{BaselineResult, Fig4Case, Table1Row, Table2Result};
use serde_json::json;

/// Render Table 1 in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "| Generated data type | retrieved data type | k | recall |\n\
         |---------------------|---------------------|---|--------|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} |\n",
            r.generated, r.retrieved, r.k, r.recall
        ));
    }
    out
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(t: &Table2Result) -> String {
    format!(
        "|                         | ChatGPT | PASTA |\n\
         |-------------------------|---------|-------|\n\
         | (tuple, tuple+text)     | {:.2}    | NA    |\n\
         | (text, relevant table)  | {:.2}    | {:.2}  |\n\
         | (text, retrieved table) | {:.2}    | {:.2}  |\n",
        t.tuple_mixed_chatgpt.value(),
        t.claim_relevant_chatgpt.value(),
        t.claim_relevant_pasta.value(),
        t.claim_retrieved_chatgpt.value(),
        t.claim_retrieved_pasta.value(),
    )
}

/// Render the baseline paragraph numbers.
pub fn render_baseline(b: &BaselineResult) -> String {
    format!(
        "ungrounded imputation accuracy: {:.2} ({} tasks)\n\
         ungrounded claim accuracy: {:.2} ({} claims)\n",
        b.imputation.value(),
        b.imputation.total,
        b.claims.value(),
        b.claims.total,
    )
}

/// Render the Figure 4 case study.
pub fn render_fig4(case: &Fig4Case) -> String {
    let mut out = format!("claim: {}\n", case.claim_text);
    for (i, e) in case.evidence.iter().enumerate() {
        out.push_str(&format!(
            "E{}: '{}' -> {}\n    {}\n",
            i + 1,
            e.caption,
            e.verdict,
            e.explanation
        ));
    }
    out
}

/// Machine-readable export of all experiment results (benchmark artifact).
pub fn to_json(
    baseline: &BaselineResult,
    table1: &[Table1Row],
    table2: &Table2Result,
    fig4: Option<&Fig4Case>,
) -> serde_json::Value {
    json!({
        "baseline": {
            "imputation_accuracy": baseline.imputation.value(),
            "imputation_n": baseline.imputation.total,
            "claim_accuracy": baseline.claims.value(),
            "claim_n": baseline.claims.total,
        },
        "table1": table1.iter().map(|r| json!({
            "generated": r.generated,
            "retrieved": r.retrieved,
            "k": r.k,
            "recall": r.recall,
        })).collect::<Vec<_>>(),
        "table2": {
            "tuple_mixed_chatgpt": table2.tuple_mixed_chatgpt.value(),
            "claim_relevant_chatgpt": table2.claim_relevant_chatgpt.value(),
            "claim_relevant_pasta": table2.claim_relevant_pasta.value(),
            "claim_retrieved_chatgpt": table2.claim_retrieved_chatgpt.value(),
            "claim_retrieved_pasta": table2.claim_retrieved_pasta.value(),
        },
        "figure4": fig4.map(|c| json!({
            "claim": c.claim_text,
            "evidence": c.evidence.iter().map(|e| json!({
                "caption": e.caption,
                "verdict": e.verdict.to_string(),
                "explanation": e.explanation,
            })).collect::<Vec<_>>(),
        })),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Accuracy;

    fn acc(c: usize, t: usize) -> Accuracy {
        Accuracy {
            correct: c,
            total: t,
        }
    }

    #[test]
    fn table_renders_contain_all_cells() {
        let rows = vec![
            Table1Row {
                generated: "tuple",
                retrieved: "tuple",
                k: 3,
                recall: 0.99,
            },
            Table1Row {
                generated: "tuple",
                retrieved: "text",
                k: 3,
                recall: 0.58,
            },
        ];
        let s = render_table1(&rows);
        assert!(s.contains("| tuple | tuple | 3 | 0.99 |"));
        assert!(s.contains("0.58"));

        let t2 = Table2Result {
            tuple_mixed_chatgpt: acc(88, 100),
            claim_relevant_chatgpt: acc(75, 100),
            claim_relevant_pasta: acc(89, 100),
            claim_retrieved_chatgpt: acc(91, 100),
            claim_retrieved_pasta: acc(72, 100),
        };
        let s = render_table2(&t2);
        assert!(s.contains("0.88"));
        assert!(s.contains("NA"));
        assert!(s.contains("0.72"));
    }

    #[test]
    fn json_export_roundtrips() {
        let b = BaselineResult {
            imputation: acc(52, 100),
            claims: acc(54, 100),
        };
        let t2 = Table2Result {
            tuple_mixed_chatgpt: acc(88, 100),
            claim_relevant_chatgpt: acc(75, 100),
            claim_relevant_pasta: acc(89, 100),
            claim_retrieved_chatgpt: acc(91, 100),
            claim_retrieved_pasta: acc(72, 100),
        };
        let v = to_json(&b, &[], &t2, None);
        assert_eq!(v["baseline"]["imputation_accuracy"], 0.52);
        assert_eq!(v["table2"]["claim_retrieved_pasta"], 0.72);
        assert!(v["figure4"].is_null());
    }
}
