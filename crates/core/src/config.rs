//! Framework configuration.

use verifai_index::FusionStrategy;
use verifai_llm::SimLlmConfig;
use verifai_verify::AgentPolicy;

/// Which structure backs the per-modality semantic index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticBackend {
    /// HNSW approximate graph — what a real deployment runs at the paper's
    /// corpus scale.
    Hnsw,
    /// Exact flat scan — the recall reference, and the backend sharded
    /// serving uses: HNSW results depend on the graph's insertion history,
    /// so only an exact backend keeps N-shard scatter/gather results
    /// identical to the single-lake build.
    Flat,
}

/// Configuration of a [`crate::VerifAi`] instance.
///
/// Defaults follow the paper's §4 setting: top-3 tuples and top-3 text files
/// per imputed tuple, top-5 tables per textual claim, retrieved by the
/// content index (plus the semantic index, combined by reciprocal-rank
/// fusion), refined by the task-specific rerankers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifAiConfig {
    /// Coarse top-k fetched from each index before combining. Task-agnostic
    /// indexes need a generous k (paper remark: hundreds to thousands at full
    /// scale) so the reranker has something to find.
    pub coarse_k: usize,
    /// Final evidence count per modality for tuple objects (paper: 3 tuples,
    /// 3 text files).
    pub k_tuples: usize,
    /// Final text-file count for tuple objects.
    pub k_texts: usize,
    /// Final table count for claim objects (paper: 5).
    pub k_tables: usize,
    /// Final knowledge-graph-entity count for tuple objects. The paper's §4
    /// evaluation has no KG modality (it is §5 future work), so the default is
    /// 0 (disabled); set > 0 to add KG evidence to the plan.
    pub k_kg: usize,
    /// Enable the content (BM25) index.
    pub use_content_index: bool,
    /// Enable the semantic (vector) index alongside the content index.
    pub use_semantic_index: bool,
    /// Structure backing the semantic index (ignored when it is disabled).
    pub semantic_backend: SemanticBackend,
    /// Serve flat semantic searches through the int8 quantized two-phase
    /// scan (shortlist over the code sidecar, exact f32 rescore). Off by
    /// default so identity tests pin exact mode; HNSW backends ignore it.
    pub quantized: bool,
    /// Shortlist over-fetch of the quantized scan: phase 1 keeps
    /// `rescore_factor · k` candidates for exact rescoring. `usize::MAX`
    /// rescores everything (byte-identical to the exact scan).
    pub rescore_factor: usize,
    /// Enable the task-specific reranking stage. When disabled, the combined
    /// coarse ranking feeds the verifier directly (paper's §4 setting reports
    /// Elasticsearch-only retrieval).
    pub use_reranker: bool,
    /// Fusion strategy of the Combiner.
    pub fusion: FusionStrategy,
    /// Verifier-selection policy of the Agent.
    pub agent_policy: AgentPolicy,
    /// Behaviour of the simulated LLM (generator + generic verifier).
    pub llm: SimLlmConfig,
    /// Run the trust-estimation loop over verdicts before deciding.
    pub use_trust_weighting: bool,
    /// Embedding dimension of the semantic index.
    pub embed_dim: usize,
    /// Master seed for index/embedding determinism.
    pub seed: u64,
    /// Worker threads for the lake-indexing phase of [`crate::VerifAi::build`]
    /// (`0` = one per available core). The built indexes are byte-identical
    /// for every thread count: modalities build concurrently, embeddings are
    /// pure functions computed into ordered slots, and graph insertion stays
    /// sequential per modality.
    pub build_threads: usize,
}

impl Default for VerifAiConfig {
    fn default() -> Self {
        VerifAiConfig {
            coarse_k: 50,
            k_tuples: 3,
            k_texts: 3,
            k_tables: 5,
            k_kg: 0,
            use_content_index: true,
            use_semantic_index: true,
            semantic_backend: SemanticBackend::Hnsw,
            quantized: false,
            rescore_factor: verifai_index::DEFAULT_RESCORE_FACTOR,
            use_reranker: true,
            fusion: FusionStrategy::ReciprocalRank { k0: 60.0 },
            agent_policy: AgentPolicy::LlmOnly,
            llm: SimLlmConfig::default(),
            use_trust_weighting: true,
            embed_dim: 128,
            seed: 0xfa1,
            build_threads: 0,
        }
    }
}

impl VerifAiConfig {
    /// The paper's §4 retrieval setting: content index only ("we simply
    /// utilized Elasticsearch as the Indexer"), no reranker.
    pub fn paper_setting() -> VerifAiConfig {
        VerifAiConfig {
            use_semantic_index: false,
            use_reranker: false,
            ..VerifAiConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_ks() {
        let c = VerifAiConfig::default();
        assert_eq!(c.k_tuples, 3);
        assert_eq!(c.k_texts, 3);
        assert_eq!(c.k_tables, 5);
        assert!(c.coarse_k >= c.k_tables);
    }

    #[test]
    fn quantized_scan_defaults_off_for_identity() {
        let c = VerifAiConfig::default();
        assert!(!c.quantized, "identity tests depend on exact default");
        assert!(c.rescore_factor >= 1);
    }

    #[test]
    fn paper_setting_disables_extras() {
        let c = VerifAiConfig::paper_setting();
        assert!(!c.use_semantic_index);
        assert!(!c.use_reranker);
    }
}
