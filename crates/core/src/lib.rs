#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
//! # verifai
//!
//! **VerifAI: Verified Generative AI** — a framework for verifying the outputs
//! of generative models against multi-modal data lakes, reproducing Tang, Yang,
//! Fan & Cao (CIDR 2024).
//!
//! Given a generated *data object* `g` (an imputed tuple cell or a textual
//! claim) and a data lake `L` of tables, tuples, and text documents, VerifAI
//! discovers evidence instances and classifies each `(g, x)` pair as
//! `Verified`, `Refuted`, or `NotRelated`:
//!
//! ```text
//! g ──► Indexer (content BM25 ⊕ semantic vectors, task-agnostic, large k)
//!        │
//!        ▼
//!       Combiner (dedup + reciprocal-rank fusion)
//!        │
//!        ▼
//!       Reranker (task-specific: ColBERT / OpenTFV / tuple, small k′)
//!        │
//!        ▼
//!       Verifier (Agent picks ChatGPT-sim / PASTA / tuple model)
//!        │
//!        ▼
//!       verdicts + explanations + provenance + trust-weighted decision
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use verifai::{VerifAi, VerifAiConfig};
//! use verifai_datagen::{build, completion_workload, LakeSpec};
//! use verifai_llm::Verdict;
//!
//! // A small synthetic multi-modal lake with ground truth by construction.
//! let generated = build(&LakeSpec::tiny(42));
//! let tasks = completion_workload(&generated, 5, 7);
//!
//! // Stand up the framework over it.
//! let mut system = VerifAi::build(generated, VerifAiConfig::default());
//!
//! // Let the (simulated) LLM impute a masked cell, then verify it.
//! let object = system.impute(&tasks[0]);
//! let report = system.verify_object(&object);
//! assert!(matches!(
//!     report.decision,
//!     Verdict::Verified | Verdict::Refuted | Verdict::NotRelated
//! ));
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the paper;
//! see EXPERIMENTS.md at the repository root for paper-vs-measured numbers.

pub mod config;
pub mod corpus;
pub mod exec;
pub mod experiments;
pub mod live;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod stages;

pub use config::{SemanticBackend, VerifAiConfig};
pub use live::{
    mutate_lake, semantic_texts, IndexOp, LakeMutation, LiveContentSource, LiveIndexes,
    LiveLakeStats, LiveSemanticSource, MutationError, MutationOutcome, SharedContent,
    SharedSemantic,
};
pub use metrics::{paper_correct, recall_at_k, Accuracy, LatencyHistogram};
pub use pipeline::{BuildStats, EvidenceVerdict, VerifAi, VerificationReport};
pub use stages::{
    JudgeOutcome, PipelineError, RerankStage, ScoreRerank, StagePlan, StageTiming, StagedPipeline,
    TopKPassthrough, VerifyStage,
};

// Re-export the vocabulary types so downstream users need only this crate.
pub use verifai_llm::{DataObject, ImputedCell, TextClaim, Verdict};

// Observability vocabulary: clocks, traces, and metrics flow through every
// layer, so surface them here alongside the pipeline types they annotate.
pub use verifai_obs::{
    Clock, CostVector, MockClock, ObsConfig, RequestTrace, SystemClock, TraceId,
};
