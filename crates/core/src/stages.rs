//! The staged evidence pipeline: Indexer → Reranker → Verifier as
//! swappable, independently instrumented stages (paper §3).
//!
//! [`StagedPipeline`] composes three object-safe stage abstractions —
//! [`verifai_index::EvidenceSource`] for retrieval, [`RerankStage`] (built
//! on [`verifai_rerank::Reranker`]) for refinement, and [`VerifyStage`]
//! (built on [`verifai_verify::Verifier`] via the
//! [`verifai_verify::Agent`]) for judging — so a new backend plugs into one
//! trait without reopening the driver. Each stage:
//!
//! * reports wall time and candidate counts through [`StageTiming`], which
//!   flows into [`crate::VerificationReport`] and aggregates into the
//!   serving layer's stats;
//! * logs lineage through a buffering [`StageRecorder`], flushed to the
//!   shared [`verifai_verify::ProvenanceSink`] **once per stage per
//!   object** — one lock acquisition each instead of one per hit;
//! * surfaces failures as typed [`PipelineError`]s instead of silently
//!   shrinking the evidence set: a retrieval hit whose instance no longer
//!   resolves is recorded as a provenance note, and stale cached evidence
//!   is a distinguishable error the service can react to.

use std::sync::Arc;
use std::time::Instant;

use crate::pipeline::EvidenceVerdict;
use verifai_index::{EvidenceSource, SearchHit, SourceQuery};
use verifai_lake::{DataInstance, DataLake, InstanceId, InstanceKind};
use verifai_llm::DataObject;
#[cfg(test)]
use verifai_obs::SpanContext;
use verifai_obs::{ns_between, Clock, RequestTrace, SystemClock};
use verifai_rerank::Reranker;
use verifai_verify::{
    Agent, ProvenanceRecord, Stage, StageRecorder, VerdictObservation, VerifierOutput,
};

/// Per-object instrumentation of one pipeline run.
///
/// Excluded from [`crate::VerificationReport`] equality: wall times differ
/// between bit-identical runs, and determinism contracts compare reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Wall time of retrieval + instance resolution, nanoseconds.
    pub retrieval_ns: u64,
    /// Wall time of the rerank stage, nanoseconds.
    pub rerank_ns: u64,
    /// Wall time of the verify stage, nanoseconds.
    pub verify_ns: u64,
    /// Coarse candidates entering the rerank stage (all modalities).
    pub candidates_in: usize,
    /// Candidates surviving to the verify stage.
    pub candidates_out: usize,
}

impl StageTiming {
    /// Timing for evidence that skipped retrieval/rerank (cached paths):
    /// the evidence set enters and leaves unchanged.
    pub fn for_cached(evidence_len: usize) -> StageTiming {
        StageTiming {
            candidates_in: evidence_len,
            candidates_out: evidence_len,
            ..StageTiming::default()
        }
    }
}

/// A typed hot-path failure. The serving layer maps these to a `Failed`
/// request outcome, distinguishable from load shedding and from
/// deadline-partial (`Unknown`) reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A cached or snapshotted evidence id no longer resolves against the
    /// lake — the evidence set is stale, not merely smaller.
    StaleEvidence {
        /// The dangling instance id.
        id: InstanceId,
        /// The lake's resolution error.
        detail: String,
    },
    /// A stage backend failed outright (reserved for external backends;
    /// the in-tree stages are infallible).
    Backend {
        /// Stage name (`retrieval`, `rerank`, `verify`).
        stage: &'static str,
        /// Backend-specific diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StaleEvidence { id, detail } => {
                write!(f, "stale evidence {id}: {detail}")
            }
            PipelineError::Backend { stage, detail } => {
                write!(f, "{stage} backend failed: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One modality's retrieval budget within a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePlan {
    /// The evidence modality to consult.
    pub kind: InstanceKind,
    /// Coarse top-k fetched from the source.
    pub coarse_k: usize,
    /// Final candidates surviving the rerank stage.
    pub final_k: usize,
}

/// The rerank stage: refine one modality's resolved coarse candidates
/// (paired with their retrieval scores) down to the final `k`.
pub trait RerankStage: Send + Sync {
    /// Stage name for provenance records.
    fn name(&self) -> &'static str;

    /// The surviving `(instance, score)` pairs, best first.
    fn rerank(
        &self,
        object: &DataObject,
        candidates: Vec<(DataInstance, f64)>,
        k: usize,
    ) -> Vec<(DataInstance, f64)>;
}

/// Rerank by re-scoring every candidate with a task-specific
/// [`Reranker`]; retrieval scores are discarded (paper §3.2).
pub struct ScoreRerank<R: Reranker> {
    reranker: R,
}

impl<R: Reranker> ScoreRerank<R> {
    /// Stage over a concrete reranker.
    pub fn new(reranker: R) -> ScoreRerank<R> {
        ScoreRerank { reranker }
    }
}

impl<R: Reranker> RerankStage for ScoreRerank<R> {
    fn name(&self) -> &'static str {
        self.reranker.name()
    }

    fn rerank(
        &self,
        object: &DataObject,
        candidates: Vec<(DataInstance, f64)>,
        k: usize,
    ) -> Vec<(DataInstance, f64)> {
        let instances = candidates.into_iter().map(|(inst, _)| inst).collect();
        verifai_rerank::rerank(&self.reranker, object, instances, k)
    }
}

/// Pass-through rerank stage: keep the retrieval ordering and scores,
/// truncated to `k` (the paper's §4 setting, `use_reranker: false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopKPassthrough;

impl RerankStage for TopKPassthrough {
    fn name(&self) -> &'static str {
        "retrieval-order"
    }

    fn rerank(
        &self,
        _object: &DataObject,
        mut candidates: Vec<(DataInstance, f64)>,
        k: usize,
    ) -> Vec<(DataInstance, f64)> {
        candidates.truncate(k);
        candidates
    }
}

/// The verify stage: judge one `(object, evidence)` pair, reporting which
/// concrete [`verifai_verify::Verifier`] did the judging (for provenance
/// and reports).
pub trait VerifyStage: Send + Sync {
    /// Judge the pair; returns the verdict and the judging verifier's name.
    fn verify(
        &self,
        object: &DataObject,
        evidence: &DataInstance,
    ) -> (VerifierOutput, &'static str);
}

impl VerifyStage for Agent {
    fn verify(
        &self,
        object: &DataObject,
        evidence: &DataInstance,
    ) -> (VerifierOutput, &'static str) {
        Agent::verify(self, object, evidence)
    }
}

/// Everything the verify stage produced for one object.
#[derive(Debug)]
pub struct JudgeOutcome {
    /// Per-evidence verdicts, in evidence order.
    pub verdicts: Vec<EvidenceVerdict>,
    /// Observations feeding the trust model's decision.
    pub observations: Vec<VerdictObservation>,
    /// Whether the deadline expired before all evidence was judged.
    pub timed_out: bool,
    /// Wall time of the stage, nanoseconds.
    pub verify_ns: u64,
}

/// The staged pipeline driver: one retrieval source per modality, one
/// rerank stage, one verify stage. [`crate::VerifAi`] delegates
/// `discover_evidence` / `verify_object` here.
pub struct StagedPipeline {
    /// Sources by modality slot (0 = tuple, 1 = table, 2 = text, 3 = kg).
    sources: [Box<dyn EvidenceSource>; 4],
    reranker: Box<dyn RerankStage>,
    verifier: Box<dyn VerifyStage>,
    /// Stamps stage timings and checks deadlines. Production uses the
    /// monotonic system clock; tests inject a `MockClock` so the timings
    /// in reports are exact, assertable values.
    clock: Arc<dyn Clock>,
}

/// One object's resolved candidates, one slot per modality stage plan.
type ResolvedSlots = Vec<(StagePlan, Vec<(DataInstance, f64)>)>;

/// The modality's slot in per-modality arrays.
pub(crate) fn slot(kind: InstanceKind) -> usize {
    match kind {
        InstanceKind::Tuple => 0,
        InstanceKind::Table => 1,
        InstanceKind::Text => 2,
        InstanceKind::Kg => 3,
    }
}

impl StagedPipeline {
    /// Compose a pipeline from its stages, timed by the system clock.
    pub fn new(
        sources: [Box<dyn EvidenceSource>; 4],
        reranker: Box<dyn RerankStage>,
        verifier: Box<dyn VerifyStage>,
    ) -> StagedPipeline {
        StagedPipeline::with_clock(sources, reranker, verifier, Arc::new(SystemClock))
    }

    /// Compose a pipeline with an explicit [`Clock`] (deterministic tests).
    pub fn with_clock(
        sources: [Box<dyn EvidenceSource>; 4],
        reranker: Box<dyn RerankStage>,
        verifier: Box<dyn VerifyStage>,
        clock: Arc<dyn Clock>,
    ) -> StagedPipeline {
        StagedPipeline {
            sources,
            reranker,
            verifier,
            clock,
        }
    }

    /// The clock timing this pipeline's stages.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The retrieval source serving one modality.
    pub fn source(&self, kind: InstanceKind) -> &dyn EvidenceSource {
        self.sources[slot(kind)].as_ref()
    }

    /// The rerank stage.
    pub fn rerank_stage(&self) -> &dyn RerankStage {
        self.reranker.as_ref()
    }

    /// Run retrieval → resolve → rerank for an object across the planned
    /// modalities, buffering provenance and flushing it once per stage.
    ///
    /// A hit whose instance fails to resolve is *not* silently dropped: a
    /// provenance note records the dangling id before the pipeline
    /// continues with the remaining candidates.
    pub fn discover(
        &self,
        object: &DataObject,
        query: SourceQuery<'_>,
        plan: &[StagePlan],
        lake: &DataLake,
        recorder: &mut StageRecorder<'_>,
        trace: &mut RequestTrace,
    ) -> (Vec<(DataInstance, f64)>, StageTiming) {
        let mut timing = StageTiming::default();

        // Stage 1: retrieval (and resolution) across all modalities, then
        // one provenance flush for the whole stage. The retrieval span id
        // is reserved *before* the scatter and handed down via the query's
        // [`SpanContext`], so distributed sources (the cluster router)
        // record their per-shard child spans under it; the span itself is
        // recorded once the stage's wall time is known.
        let retrieval_span = trace.reserve();
        let mut query = query;
        query.ctx = trace.context(retrieval_span);
        let started = self.clock.now();
        let mut resolved_per_modality: Vec<(StagePlan, Vec<(DataInstance, f64)>)> =
            Vec::with_capacity(plan.len());
        for &stage_plan in plan {
            let hits = self
                .source(stage_plan.kind)
                .search(query, stage_plan.coarse_k);
            timing.candidates_in += hits.len();
            let resolved = self.resolve_modality(object, stage_plan, &hits, lake, recorder);
            resolved_per_modality.push((stage_plan, resolved));
        }
        let resolved_total: usize = resolved_per_modality.iter().map(|(_, r)| r.len()).sum();
        timing.retrieval_ns = ns_between(started, self.clock.now());
        recorder.flush_stage();
        trace.span_reserved(
            retrieval_span,
            "retrieval",
            timing.retrieval_ns,
            timing.candidates_in,
            resolved_total,
            String::new(),
        );

        // Stage 2: rerank each modality's candidates, one flush.
        let started = self.clock.now();
        let mut out = Vec::new();
        for (stage_plan, resolved) in resolved_per_modality {
            let ranked = self.rerank_modality(object, stage_plan, resolved, recorder);
            timing.candidates_out += ranked.len();
            out.extend(ranked);
        }
        timing.rerank_ns = ns_between(started, self.clock.now());
        recorder.flush_stage();
        trace.span(
            "rerank",
            timing.rerank_ns,
            resolved_total,
            timing.candidates_out,
            String::new(),
        );

        (out, timing)
    }

    /// Empty per-object resolution slots for a `batch`-object plan.
    fn empty_slots(batch: usize, plan_len: usize) -> Vec<ResolvedSlots> {
        (0..batch).map(|_| Vec::with_capacity(plan_len)).collect()
    }

    /// Batched retrieval → resolve → rerank for `objects[i]` under
    /// `queries[i]`, all sharing one `plan` (the service groups requests by
    /// object kind, so one plan fits the whole batch).
    ///
    /// Retrieval issues **one [`EvidenceSource::search_batch`] per
    /// modality for the whole batch** — the flat index's blocked kernel
    /// and the cluster router's batched scatter amortize a single sweep
    /// across all B queries — then resolution, provenance, and rerank run
    /// per object exactly as [`StagedPipeline::discover`] would. Each
    /// stage flushes provenance once for the whole batch, and each
    /// object's timing carries its per-object candidate counts with an
    /// even 1/B share of the batch's stage wall times.
    pub fn discover_batch(
        &self,
        objects: &[&DataObject],
        queries: &[SourceQuery<'_>],
        plan: &[StagePlan],
        lake: &DataLake,
        recorder: &mut StageRecorder<'_>,
    ) -> Vec<(Vec<(DataInstance, f64)>, StageTiming)> {
        debug_assert_eq!(objects.len(), queries.len());
        let batch = objects.len();
        if batch == 0 {
            return Vec::new();
        }
        let mut timings = vec![StageTiming::default(); batch];

        // Stage 1: one batched retrieval per modality, resolution per
        // object, one flush for the whole batch.
        let started = self.clock.now();
        let mut resolved = Self::empty_slots(batch, plan.len());
        for &stage_plan in plan {
            let per_query = self
                .source(stage_plan.kind)
                .search_batch(queries, stage_plan.coarse_k);
            for ((object, hits), (timing, slots)) in objects
                .iter()
                .zip(per_query)
                .zip(timings.iter_mut().zip(resolved.iter_mut()))
            {
                timing.candidates_in += hits.len();
                let res = self.resolve_modality(object, stage_plan, &hits, lake, recorder);
                slots.push((stage_plan, res));
            }
        }
        let retrieval_ns = ns_between(started, self.clock.now()) / batch as u64;
        recorder.flush_stage();

        // Stage 2: rerank per object, one flush.
        let started = self.clock.now();
        let mut out = Vec::with_capacity(batch);
        for (object, (per_modality, timing)) in objects
            .iter()
            .zip(resolved.into_iter().zip(timings.iter_mut()))
        {
            let mut evidence = Vec::new();
            for (stage_plan, res) in per_modality {
                let ranked = self.rerank_modality(object, stage_plan, res, recorder);
                timing.candidates_out += ranked.len();
                evidence.extend(ranked);
            }
            out.push(evidence);
        }
        let rerank_ns = ns_between(started, self.clock.now()) / batch as u64;
        recorder.flush_stage();

        out.into_iter()
            .zip(timings)
            .map(|(evidence, mut timing)| {
                timing.retrieval_ns = retrieval_ns;
                timing.rerank_ns = rerank_ns;
                (evidence, timing)
            })
            .collect()
    }

    /// Resolve one modality's retrieval hits for one object against the
    /// lake, recording a provenance row per hit (a note, not a silent
    /// drop, for the unresolvable ones).
    fn resolve_modality(
        &self,
        object: &DataObject,
        stage_plan: StagePlan,
        hits: &[SearchHit],
        lake: &DataLake,
        recorder: &mut StageRecorder<'_>,
    ) -> Vec<(DataInstance, f64)> {
        let mut resolved = Vec::with_capacity(hits.len());
        for (rank, hit) in hits.iter().enumerate() {
            let stage = Stage::Retrieval {
                index: format!(
                    "{}-{}",
                    self.source(stage_plan.kind).name(),
                    stage_plan.kind
                ),
                rank,
            };
            match lake.resolve(hit.id) {
                Ok(instance) => {
                    recorder.record(ProvenanceRecord {
                        object_id: object.id(),
                        stage,
                        instance: Some(hit.id),
                        score: Some(hit.score),
                        verdict: None,
                        note: String::new(),
                    });
                    resolved.push((instance, hit.score));
                }
                Err(error) => recorder.record(ProvenanceRecord {
                    object_id: object.id(),
                    stage,
                    instance: Some(hit.id),
                    score: Some(hit.score),
                    verdict: None,
                    note: format!("unresolved evidence instance dropped: {error:?}"),
                }),
            }
        }
        resolved
    }

    /// Rerank one modality's resolved candidates for one object down to
    /// the plan's final k, recording a provenance row per survivor.
    fn rerank_modality(
        &self,
        object: &DataObject,
        stage_plan: StagePlan,
        resolved: Vec<(DataInstance, f64)>,
        recorder: &mut StageRecorder<'_>,
    ) -> Vec<(DataInstance, f64)> {
        let ranked = self.reranker.rerank(object, resolved, stage_plan.final_k);
        for (rank, (instance, score)) in ranked.iter().enumerate() {
            recorder.record(ProvenanceRecord {
                object_id: object.id(),
                stage: Stage::Rerank {
                    reranker: self.reranker.name().into(),
                    rank,
                },
                instance: Some(instance.id()),
                score: Some(*score),
                verdict: None,
                note: String::new(),
            });
        }
        ranked
    }

    /// Run the verify stage over discovered evidence, buffering provenance
    /// and flushing once. Judging stops early when `deadline` passes, in
    /// which case [`JudgeOutcome::timed_out`] is set and the verdicts
    /// gathered so far are returned.
    pub fn judge(
        &self,
        object: &DataObject,
        evidence: Vec<(DataInstance, f64)>,
        deadline: Option<Instant>,
        recorder: &mut StageRecorder<'_>,
        trace: &mut RequestTrace,
    ) -> JudgeOutcome {
        let started = self.clock.now();
        let planned = evidence.len();
        let mut verdicts = Vec::with_capacity(evidence.len());
        let mut observations = Vec::with_capacity(evidence.len());
        let mut timed_out = false;
        for (instance, score) in evidence {
            if deadline.is_some_and(|d| self.clock.now() >= d) {
                timed_out = true;
                break;
            }
            let (output, verifier) = self.verifier.verify(object, &instance);
            recorder.record(ProvenanceRecord {
                object_id: object.id(),
                stage: Stage::Verify {
                    verifier: verifier.into(),
                },
                instance: Some(instance.id()),
                score: Some(score),
                verdict: Some(output.verdict),
                note: output.explanation.clone(),
            });
            observations.push(VerdictObservation {
                object_id: object.id(),
                source: instance.source(),
                verdict: output.verdict,
            });
            verdicts.push(EvidenceVerdict {
                instance: instance.id(),
                source: instance.source(),
                score,
                verdict: output.verdict,
                explanation: output.explanation,
                verifier,
            });
        }
        let verify_ns = ns_between(started, self.clock.now());
        recorder.flush_stage();
        trace.span(
            "verify",
            verify_ns,
            planned,
            verdicts.len(),
            if timed_out {
                "deadline".into()
            } else {
                String::new()
            },
        );
        JudgeOutcome {
            verdicts,
            observations,
            timed_out,
            verify_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_index::SearchHit;
    use verifai_llm::{ImputedCell, SimLlm, SimLlmConfig, WorldModel};
    use verifai_verify::{AgentPolicy, LlmVerifier, ProvenanceSink, SharedProvenance};

    /// A source that returns one dangling id alongside a real one.
    struct FakeSource {
        hits: Vec<SearchHit>,
    }

    impl EvidenceSource for FakeSource {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn search(&self, _query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
            self.hits.iter().copied().take(k).collect()
        }
    }

    fn pipeline_with(hits: Vec<SearchHit>) -> StagedPipeline {
        let empty = || -> Box<dyn EvidenceSource> { Box::new(FakeSource { hits: vec![] }) };
        let mut sources = [empty(), empty(), empty(), empty()];
        sources[slot(InstanceKind::Tuple)] = Box::new(FakeSource { hits });
        let agent = Agent::new(
            vec![],
            Box::new(LlmVerifier::new(SimLlm::new(
                SimLlmConfig::oracle(1),
                WorldModel::new(),
            ))),
            AgentPolicy::LlmOnly,
        );
        StagedPipeline::new(sources, Box::new(TopKPassthrough), Box::new(agent))
    }

    fn object() -> DataObject {
        use verifai_lake::{Column, DataType, Schema, Tuple, Value};
        DataObject::ImputedCell(ImputedCell {
            id: 7,
            tuple: Tuple {
                id: 0,
                table: 0,
                row_index: 0,
                schema: Schema::new(vec![Column::key("k", DataType::Text)]),
                values: vec![Value::text("v")],
                source: 0,
            },
            column: "k".into(),
            value: Value::text("v"),
        })
    }

    #[test]
    fn unresolved_hits_leave_a_provenance_note() {
        let generated = verifai_datagen::build(&verifai_datagen::LakeSpec::tiny(5));
        let real = generated.lake.tuple_ids().next().expect("lake has tuples");
        let dangling = InstanceId::Tuple(u64::MAX);
        let pipeline = pipeline_with(vec![
            SearchHit::new(InstanceId::Tuple(real), 2.0),
            SearchHit::new(dangling, 1.0),
        ]);
        let sink = SharedProvenance::new();
        let mut recorder = StageRecorder::new(&sink);
        let plan = [StagePlan {
            kind: InstanceKind::Tuple,
            coarse_k: 10,
            final_k: 10,
        }];
        let query = SourceQuery {
            text: "q",
            vector: None,
            ctx: SpanContext::none(),
        };
        let (evidence, timing) = pipeline.discover(
            &object(),
            query,
            &plan,
            &generated.lake,
            &mut recorder,
            &mut RequestTrace::disabled(),
        );
        // The resolvable hit survives with its retrieval score...
        assert_eq!(evidence.len(), 1);
        assert_eq!(evidence[0].0.id(), InstanceId::Tuple(real));
        assert_eq!(evidence[0].1, 2.0);
        // ...and the dangling one is audit-visible instead of silent.
        let log = sink.lock();
        let noted: Vec<_> = log
            .for_object(7)
            .into_iter()
            .filter(|r| r.note.contains("unresolved evidence instance"))
            .collect();
        assert_eq!(noted.len(), 1);
        assert_eq!(noted[0].instance, Some(dangling));
        assert_eq!(timing.candidates_in, 2);
        assert_eq!(timing.candidates_out, 1);
    }

    #[test]
    fn discover_flushes_once_per_stage() {
        let generated = verifai_datagen::build(&verifai_datagen::LakeSpec::tiny(5));
        let real = generated.lake.tuple_ids().next().expect("lake has tuples");
        let pipeline = pipeline_with(vec![SearchHit::new(InstanceId::Tuple(real), 2.0)]);
        let sink = SharedProvenance::new();
        let mut recorder = StageRecorder::new(&sink);
        let plan = [StagePlan {
            kind: InstanceKind::Tuple,
            coarse_k: 10,
            final_k: 10,
        }];
        let query = SourceQuery {
            text: "q",
            vector: None,
            ctx: SpanContext::none(),
        };
        let (evidence, _) = pipeline.discover(
            &object(),
            query,
            &plan,
            &generated.lake,
            &mut recorder,
            &mut RequestTrace::disabled(),
        );
        assert_eq!(sink.batches(), 2, "retrieval + rerank, one flush each");
        let outcome = pipeline.judge(
            &object(),
            evidence,
            None,
            &mut recorder,
            &mut RequestTrace::disabled(),
        );
        assert_eq!(outcome.verdicts.len(), 1);
        assert_eq!(sink.batches(), 3, "verify adds exactly one flush");
    }

    #[test]
    fn enabled_trace_captures_all_three_stages() {
        let generated = verifai_datagen::build(&verifai_datagen::LakeSpec::tiny(5));
        let real = generated.lake.tuple_ids().next().expect("lake has tuples");
        let dangling = InstanceId::Tuple(u64::MAX);
        let pipeline = pipeline_with(vec![
            SearchHit::new(InstanceId::Tuple(real), 2.0),
            SearchHit::new(dangling, 1.0),
        ]);
        let sink = SharedProvenance::new();
        let mut recorder = StageRecorder::new(&sink);
        let plan = [StagePlan {
            kind: InstanceKind::Tuple,
            coarse_k: 10,
            final_k: 10,
        }];
        let query = SourceQuery {
            text: "q",
            vector: None,
            ctx: SpanContext::none(),
        };
        let mut trace = RequestTrace::new(42, 7);
        let (evidence, _) = pipeline.discover(
            &object(),
            query,
            &plan,
            &generated.lake,
            &mut recorder,
            &mut trace,
        );
        pipeline.judge(&object(), evidence, None, &mut recorder, &mut trace);
        let retrieval = trace.span_for("retrieval").expect("retrieval span");
        assert_eq!(retrieval.candidates_in, 2, "both hits entered retrieval");
        assert_eq!(retrieval.candidates_out, 1, "dangling hit dropped");
        let rerank = trace.span_for("rerank").expect("rerank span");
        assert_eq!(rerank.candidates_in, 1);
        assert_eq!(rerank.candidates_out, 1);
        let verify = trace.span_for("verify").expect("verify span");
        assert_eq!(verify.candidates_in, 1);
        assert_eq!(verify.candidates_out, 1);
        assert_eq!(verify.note, "");
    }

    #[test]
    fn pipeline_error_is_displayable() {
        let stale = PipelineError::StaleEvidence {
            id: InstanceId::Tuple(4),
            detail: "tuple 4 not found".into(),
        };
        assert!(stale.to_string().contains("stale evidence"));
        let backend = PipelineError::Backend {
            stage: "retrieval",
            detail: "connection reset".into(),
        };
        assert!(backend.to_string().contains("retrieval backend failed"));
    }
}
