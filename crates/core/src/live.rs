//! The live mutation layer: streaming changes through the lake and into the
//! standing indexes.
//!
//! [`VerifAi::build`](crate::VerifAi::build) stands the system up over
//! **shared, lockable** indexes — a [`SegmentedInvertedIndex`] per modality
//! for content retrieval and an [`AnyVectorIndex`] per modality for semantic
//! retrieval — wrapped in [`LiveContentSource`] / [`LiveSemanticSource`] so
//! the staged pipeline reads them through the ordinary
//! [`EvidenceSource`] trait while [`VerifAi::apply`](crate::VerifAi::apply)
//! mutates them in place.
//!
//! A [`LakeMutation`] is applied in three steps:
//!
//! 1. serialize the *old* text of every affected instance (the segmented
//!    index subtracts a removed document's statistics by re-analyzing its
//!    exact original text);
//! 2. mutate the [`DataLake`](verifai_lake::DataLake), which bumps the
//!    generation counter and records tombstones;
//! 3. translate the change into index operations — remove + add on the
//!    content index, tombstone + re-embed + insert on the semantic index.
//!
//! Tuple mutations also refresh the *owning table's* entries: the table's
//! serialized form includes every row, so adding, updating, or removing a
//! row changes the table document too. Text documents embed as overlapping
//! sentence chunks under the document's id (mirroring the batch build), and
//! a single `remove` tombstones every chunk.

use std::sync::Arc;

use parking_lot::RwLock;
use verifai_embed::TextEmbedder;
use verifai_index::{
    AnyVectorIndex, EvidenceSource, SearchHit, SegmentedInvertedIndex, SourceQuery, VectorIndex,
};
use verifai_lake::{
    DataLake, DocId, InstanceId, LakeError, Table, TableId, TextDocument, TupleId, Value,
};

/// A shared handle to one modality's content index.
pub type SharedContent = Arc<RwLock<SegmentedInvertedIndex>>;
/// A shared handle to one modality's semantic index.
pub type SharedSemantic = Arc<RwLock<AnyVectorIndex>>;

/// One streaming change to the lake. Applied through
/// [`VerifAi::apply`](crate::VerifAi::apply), which keeps the standing
/// indexes consistent with the lake.
#[derive(Debug, Clone, PartialEq)]
pub enum LakeMutation {
    /// Insert a new text document.
    AddDoc(TextDocument),
    /// Replace the title and body of an existing document.
    UpdateDoc {
        /// The document to rewrite.
        id: DocId,
        /// New title.
        title: String,
        /// New body.
        body: String,
    },
    /// Remove a document.
    RemoveDoc(DocId),
    /// Insert a new table (its rows register as tuples).
    AddTable(Table),
    /// Remove a table and all its tuples.
    RemoveTable(TableId),
    /// Append one row to an existing table.
    AddTuple {
        /// The owning table.
        table: TableId,
        /// Row values, matching the table's arity.
        values: Vec<Value>,
    },
    /// Replace an existing tuple's values in place.
    UpdateTuple {
        /// The tuple to rewrite.
        id: TupleId,
        /// New values, matching the table's arity.
        values: Vec<Value>,
    },
    /// Remove one tuple (physically deleting its row).
    RemoveTuple(TupleId),
}

/// What applying one [`LakeMutation`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The lake's generation after the mutation.
    pub generation: u64,
    /// Content-index operations performed (adds + removes).
    pub content_ops: usize,
    /// Semantic entries embedded and inserted.
    pub embedded: usize,
}

/// Why a mutation could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationError {
    /// The lake rejected the change (missing id, arity mismatch, duplicate).
    Lake(LakeError),
    /// The system was assembled over external retrieval sources
    /// ([`VerifAi::with_sources`](crate::VerifAi::with_sources)) and owns no
    /// mutable indexes; route mutations through the owning layer instead.
    ImmutableSources,
    /// The system owns live indexes; its lake must change through
    /// [`VerifAi::apply`](crate::VerifAi::apply), not an external router.
    OwnsLiveIndexes,
}

impl From<LakeError> for MutationError {
    fn from(e: LakeError) -> MutationError {
        MutationError::Lake(e)
    }
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Lake(e) => write!(f, "lake rejected mutation: {e:?}"),
            MutationError::ImmutableSources => {
                write!(f, "system has external sources; indexes are immutable here")
            }
            MutationError::OwnsLiveIndexes => {
                write!(f, "system owns live indexes; mutate through VerifAi::apply")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Aggregate health of the live lake + indexes, surfaced through the
/// service stats endpoint and the `verifai_lake_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveLakeStats {
    /// The lake's mutation generation.
    pub generation: u64,
    /// Mutations applied through [`VerifAi::apply`](crate::VerifAi::apply).
    pub mutations: u64,
    /// Lake-level tombstones (instances removed and not re-added).
    pub lake_tombstones: usize,
    /// Live documents across the content indexes.
    pub content_docs: usize,
    /// Uncompacted content tombstones.
    pub content_tombstones: usize,
    /// Segments (sealed + memtable) across the content indexes.
    pub content_segments: usize,
    /// Content compaction merges performed.
    pub content_compactions: u64,
    /// Live vectors across the semantic indexes.
    pub semantic_vectors: usize,
    /// Uncompacted semantic tombstones.
    pub semantic_tombstones: usize,
    /// Semantic compactions performed.
    pub semantic_compactions: u64,
}

/// The mutable indexes standing behind a live system, one slot per modality
/// (0 = tuples, 1 = tables, 2 = texts, 3 = knowledge graph). The pipeline's
/// retrieval sources hold clones of the same `Arc`s, so a write here is
/// visible to the next search.
pub struct LiveIndexes {
    /// Content (BM25) indexes. Always present: the content corpus is built
    /// even when content retrieval is disabled in fusion.
    pub content: [SharedContent; 4],
    /// Semantic indexes; `None` when semantic retrieval is disabled.
    pub semantic: [Option<SharedSemantic>; 4],
}

impl LiveIndexes {
    /// Sum index health over every modality into one stats block (lake
    /// fields are left zeroed; the caller stamps them).
    pub fn stats(&self) -> LiveLakeStats {
        let mut s = LiveLakeStats::default();
        for content in &self.content {
            let c = content.read();
            s.content_docs += c.len();
            s.content_tombstones += c.tombstones();
            s.content_segments += c.segments();
            s.content_compactions += c.compactions();
        }
        for semantic in self.semantic.iter().flatten() {
            let v = semantic.read();
            s.semantic_vectors += VectorIndex::len(&*v);
            s.semantic_tombstones += v.tombstones();
            s.semantic_compactions += v.compactions();
        }
        s
    }

    /// Force-compact every index: seal and merge the content segments, drop
    /// tombstoned vectors. One job per index slot, fanned out over
    /// [`crate::exec::run_scoped`] — the "background merge" entry point the
    /// serving layer calls off the query path.
    pub fn compact(&self, threads: usize) {
        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(8);
        for content in &self.content {
            let content = Arc::clone(content);
            jobs.push(Box::new(move || {
                let mut c = content.write();
                c.seal();
                c.compact();
            }));
        }
        for semantic in self.semantic.iter().flatten() {
            let semantic = Arc::clone(semantic);
            jobs.push(Box::new(move || semantic.write().compact()));
        }
        crate::exec::run_scoped(threads, jobs);
    }
}

/// An [`EvidenceSource`] reading a shared live content index.
pub struct LiveContentSource(SharedContent);

impl LiveContentSource {
    /// Wrap a shared content index as a retrieval source.
    pub fn new(index: SharedContent) -> LiveContentSource {
        LiveContentSource(index)
    }
}

impl EvidenceSource for LiveContentSource {
    fn name(&self) -> &'static str {
        // Same ranking function as the monolithic index; see
        // `SegmentedInvertedIndex`'s score-equivalence contract.
        "bm25"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        self.0.read().search(query.text, k)
    }
}

/// An [`EvidenceSource`] reading a shared live semantic index.
pub struct LiveSemanticSource {
    index: SharedSemantic,
    name: &'static str,
}

impl LiveSemanticSource {
    /// Wrap a shared semantic index as a retrieval source.
    pub fn new(index: SharedSemantic) -> LiveSemanticSource {
        let name = index.read().backend_name();
        LiveSemanticSource { index, name }
    }
}

impl EvidenceSource for LiveSemanticSource {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => VectorIndex::search(&*self.index.read(), vector, k),
            None => Vec::new(),
        }
    }

    /// Lock-amortizing batch: take the read lock once and run the whole
    /// batch through the index's blocked multi-query kernel.
    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        let dense: Vec<verifai_embed::Vector> =
            queries.iter().filter_map(|q| q.vector.cloned()).collect();
        if dense.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        let mut results = VectorIndex::search_batch(&*self.index.read(), &dense, k).into_iter();
        queries
            .iter()
            .map(|q| match q.vector {
                Some(_) => results.next().unwrap_or_default(),
                None => Vec::new(),
            })
            .collect()
    }
}

/// The semantic entry texts for one instance: overlapping sentence chunks
/// for text documents (mirroring the batch build's chunking), the
/// serialized text itself for every other modality. Public so external
/// index owners (the cluster's shard router) chunk identically.
pub fn semantic_texts(id: InstanceId, text: &str) -> Vec<String> {
    match id {
        InstanceId::Text(_) => verifai_text::chunk_sentences(text, 3, 1)
            .into_iter()
            .map(|c| c.text)
            .collect(),
        _ => vec![text.to_string()],
    }
}

/// One index-level consequence of a lake mutation: retire the old text of
/// `id` (if any) and index the new text (if any). `remove` must be the
/// exact text the instance was last indexed with — the segmented index
/// re-analyzes it to subtract the document's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexOp {
    /// The affected instance.
    pub id: InstanceId,
    /// Exact text the instance was last indexed with, when it must be
    /// retired.
    pub remove: Option<String>,
    /// New text to index, when the instance is (re)born.
    pub add: Option<String>,
}

impl IndexOp {
    /// Index `text` under a fresh `id`.
    pub fn add(id: InstanceId, text: String) -> IndexOp {
        IndexOp {
            id,
            remove: None,
            add: Some(text),
        }
    }

    /// Retire `id`, last indexed as `old`.
    pub fn remove(id: InstanceId, old: String) -> IndexOp {
        IndexOp {
            id,
            remove: Some(old),
            add: None,
        }
    }

    /// Replace `id`'s indexed text `old` with `new`.
    pub fn update(id: InstanceId, old: String, new: String) -> IndexOp {
        IndexOp {
            id,
            remove: Some(old),
            add: Some(new),
        }
    }
}

/// Apply a batch of index ops to the live indexes, embedding new semantic
/// entries with `embedder` when semantic retrieval is enabled. Returns
/// (content ops, semantic entries embedded).
pub(crate) fn apply_ops(
    live: &LiveIndexes,
    embedder: Option<&TextEmbedder>,
    ops: Vec<IndexOp>,
) -> (usize, usize) {
    let mut content_ops = 0;
    let mut embedded = 0;
    for op in ops {
        let slot = crate::stages::slot(op.id.kind());
        {
            let mut content = live.content[slot].write();
            if let Some(old) = &op.remove {
                content.remove(op.id, old);
                content_ops += 1;
            }
            if let Some(new) = &op.add {
                content.add(op.id, new);
                content_ops += 1;
            }
        }
        if let (Some(semantic), Some(embedder)) = (&live.semantic[slot], embedder) {
            let mut index = semantic.write();
            if op.remove.is_some() {
                index.remove(op.id);
            }
            if let Some(new) = &op.add {
                for text in semantic_texts(op.id, new) {
                    index.add(op.id, embedder.embed(&text));
                    embedded += 1;
                }
            }
        }
    }
    (content_ops, embedded)
}

/// Translate one [`LakeMutation`] into lake changes plus the index ops that
/// keep the standing indexes consistent. The lake is mutated here; the
/// returned ops are applied by the caller (who owns the index handles) —
/// [`VerifAi::apply`](crate::VerifAi::apply) for single-lake systems, the
/// cluster router for sharded ones.
pub fn mutate_lake(lake: &mut DataLake, mutation: LakeMutation) -> Result<Vec<IndexOp>, LakeError> {
    use verifai_text::{serialize_table, serialize_tuple};
    let table_text = |lake: &DataLake, id: TableId| -> Result<String, LakeError> {
        Ok(serialize_table(lake.table(id)?))
    };
    match mutation {
        LakeMutation::AddDoc(doc) => {
            let id = doc.id;
            let text = doc.full_text();
            lake.add_doc(doc)?;
            Ok(vec![IndexOp::add(InstanceId::Text(id), text)])
        }
        LakeMutation::UpdateDoc { id, title, body } => {
            let old = lake.doc(id)?.full_text();
            lake.update_doc(id, title, body)?;
            let new = lake.doc(id)?.full_text();
            Ok(vec![IndexOp::update(InstanceId::Text(id), old, new)])
        }
        LakeMutation::RemoveDoc(id) => {
            let doc = lake.remove_doc(id)?;
            Ok(vec![IndexOp::remove(InstanceId::Text(id), doc.full_text())])
        }
        LakeMutation::AddTable(table) => {
            let id = table.id;
            let range = lake.add_table(table)?;
            let mut ops = vec![IndexOp::add(InstanceId::Table(id), table_text(lake, id)?)];
            for tuple_id in range {
                let tuple = lake.tuple(tuple_id)?;
                ops.push(IndexOp::add(
                    InstanceId::Tuple(tuple_id),
                    serialize_tuple(&tuple),
                ));
            }
            Ok(ops)
        }
        LakeMutation::RemoveTable(id) => {
            let old_table = table_text(lake, id)?;
            let old_tuples: Vec<(TupleId, String)> = lake
                .tuples_of_table(id)
                .into_iter()
                .map(|t| {
                    let tuple = lake.tuple(t).expect("directory-listed tuple resolves");
                    (t, serialize_tuple(&tuple))
                })
                .collect();
            lake.remove_table(id)?;
            let mut ops = vec![IndexOp::remove(InstanceId::Table(id), old_table)];
            for (tuple_id, text) in old_tuples {
                ops.push(IndexOp::remove(InstanceId::Tuple(tuple_id), text));
            }
            Ok(ops)
        }
        LakeMutation::AddTuple { table, values } => {
            let old_table = table_text(lake, table)?;
            let tuple_id = lake.add_tuple(table, values)?;
            let tuple = lake.tuple(tuple_id)?;
            Ok(vec![
                IndexOp::add(InstanceId::Tuple(tuple_id), serialize_tuple(&tuple)),
                IndexOp::update(
                    InstanceId::Table(table),
                    old_table,
                    table_text(lake, table)?,
                ),
            ])
        }
        LakeMutation::UpdateTuple { id, values } => {
            let old = serialize_tuple(&lake.tuple(id)?);
            let owner = lake.tuple(id)?.table;
            let old_table = table_text(lake, owner)?;
            let tuple = lake.update_tuple(id, values)?;
            Ok(vec![
                IndexOp::update(InstanceId::Tuple(id), old, serialize_tuple(&tuple)),
                IndexOp::update(
                    InstanceId::Table(owner),
                    old_table,
                    table_text(lake, owner)?,
                ),
            ])
        }
        LakeMutation::RemoveTuple(id) => {
            let owner = lake.tuple(id)?.table;
            let old_table = table_text(lake, owner)?;
            let tuple = lake.remove_tuple(id)?;
            Ok(vec![
                IndexOp::remove(InstanceId::Tuple(id), serialize_tuple(&tuple)),
                IndexOp::update(
                    InstanceId::Table(owner),
                    old_table,
                    table_text(lake, owner)?,
                ),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VerifAi, VerifAiConfig};
    use verifai_datagen::{build, LakeSpec};
    use verifai_lake::InstanceKind;

    fn live_system(seed: u64) -> VerifAi {
        VerifAi::build(build(&LakeSpec::tiny(seed)), VerifAiConfig::default())
    }

    #[test]
    fn added_doc_is_retrievable_and_removal_forgets_it() {
        let mut sys = live_system(11);
        let gen_before = sys.lake().generation();
        let doc = TextDocument::new(
            9001,
            "Zanzibar spice auction",
            "The Zanzibar spice auction of 1964 set clove price records.",
            0,
        );
        let outcome = sys.apply(LakeMutation::AddDoc(doc)).expect("add applies");
        assert!(outcome.generation > gen_before);
        assert!(outcome.content_ops >= 1);
        assert!(outcome.embedded >= 1, "doc chunks must embed");
        let hits = sys.retrieve("Zanzibar spice auction clove", InstanceKind::Text, 3);
        assert_eq!(hits.first().map(|h| h.id), Some(InstanceId::Text(9001)));

        sys.apply(LakeMutation::RemoveDoc(9001))
            .expect("remove applies");
        let hits = sys.retrieve("Zanzibar spice auction clove", InstanceKind::Text, 3);
        assert!(
            hits.iter().all(|h| h.id != InstanceId::Text(9001)),
            "removed doc still retrieved: {hits:?}"
        );
        assert!(sys.lake().doc(9001).is_err());
        let stats = sys.live_stats();
        assert_eq!(stats.mutations, 2);
        assert!(stats.lake_tombstones >= 1);
    }

    #[test]
    fn updated_doc_ranks_under_its_new_text() {
        let mut sys = live_system(13);
        sys.apply(LakeMutation::AddDoc(TextDocument::new(
            9002,
            "Original title",
            "A plain paragraph about nothing in particular.",
            0,
        )))
        .expect("add");
        sys.apply(LakeMutation::UpdateDoc {
            id: 9002,
            title: "Quokka census".into(),
            body: "The Rottnest Island quokka census counted marsupials.".into(),
        })
        .expect("update");
        let hits = sys.retrieve("Rottnest quokka census marsupials", InstanceKind::Text, 3);
        assert_eq!(hits.first().map(|h| h.id), Some(InstanceId::Text(9002)));
        // The old text no longer matches anywhere near the top.
        let stale = sys.retrieve("plain paragraph about nothing", InstanceKind::Text, 50);
        assert!(
            stale.iter().all(|h| h.id != InstanceId::Text(9002))
                || stale.first().map(|h| h.id) != Some(InstanceId::Text(9002))
        );
    }

    #[test]
    fn tuple_mutations_refresh_owning_table() {
        let mut sys = live_system(17);
        let table_id = sys.lake().tables().next().expect("lake has tables").id;
        let arity = sys.lake().table(table_id).unwrap().schema.arity();
        let values: Vec<Value> = (0..arity)
            .map(|c| Value::text(format!("xylophone{c}")))
            .collect();
        let outcome = sys
            .apply(LakeMutation::AddTuple {
                table: table_id,
                values,
            })
            .expect("tuple add applies");
        // Tuple insert + table refresh: at least three content ops
        // (tuple add, table remove, table add).
        assert!(outcome.content_ops >= 3);
        let new_id = sys
            .lake()
            .tuples_of_table(table_id)
            .into_iter()
            .next_back()
            .expect("table has tuples");
        // Rank-fusion with the hash embedder shuffles exact positions, so
        // assert membership, not rank 1.
        let hits = sys.retrieve("xylophone0 xylophone1", InstanceKind::Tuple, 10);
        assert!(
            hits.iter().any(|h| h.id == InstanceId::Tuple(new_id)),
            "new tuple {new_id} missing from {hits:?}"
        );

        sys.apply(LakeMutation::RemoveTuple(new_id))
            .expect("remove");
        let hits = sys.retrieve("xylophone0 xylophone1", InstanceKind::Tuple, 10);
        assert!(hits.iter().all(|h| h.id != InstanceId::Tuple(new_id)));
    }

    #[test]
    fn external_source_systems_reject_mutations_without_touching_the_lake() {
        let generated = build(&LakeSpec::tiny(19));
        let config = VerifAiConfig::default();
        let reference = VerifAi::build(build(&LakeSpec::tiny(19)), config);
        struct NullSource;
        impl EvidenceSource for NullSource {
            fn name(&self) -> &'static str {
                "null"
            }
            fn search(&self, _query: SourceQuery<'_>, _k: usize) -> Vec<SearchHit> {
                Vec::new()
            }
        }
        let sources: [Box<dyn EvidenceSource>; 4] = [
            Box::new(NullSource),
            Box::new(NullSource),
            Box::new(NullSource),
            Box::new(NullSource),
        ];
        let mut sys = VerifAi::with_sources(generated, config, sources, Default::default());
        let gen_before = sys.lake().generation();
        let err = sys
            .apply(LakeMutation::RemoveDoc(0))
            .expect_err("external sources are immutable");
        assert_eq!(err, MutationError::ImmutableSources);
        assert_eq!(sys.lake().generation(), gen_before, "lake untouched");
        assert_eq!(sys.live_stats().mutations, 0);
        drop(reference);
    }

    #[test]
    fn compaction_drops_tombstones_and_keeps_results() {
        let mut sys = live_system(23);
        for i in 0..20 {
            sys.apply(LakeMutation::AddDoc(TextDocument::new(
                8000 + i,
                format!("ephemeral {i}"),
                format!("short-lived document number {i} about wombats"),
                0,
            )))
            .expect("add");
        }
        for i in 0..20 {
            sys.apply(LakeMutation::RemoveDoc(8000 + i))
                .expect("remove");
        }
        let before = sys.retrieve("wombats", InstanceKind::Text, 5);
        sys.compact_live(2);
        let stats = sys.live_stats();
        assert_eq!(stats.content_tombstones, 0, "compaction clears tombstones");
        assert_eq!(stats.semantic_tombstones, 0);
        let after = sys.retrieve("wombats", InstanceKind::Text, 5);
        assert_eq!(before, after, "compaction must not change results");
        assert!(after
            .iter()
            .all(|h| !matches!(h.id, InstanceId::Text(d) if d >= 8000)));
    }
}
