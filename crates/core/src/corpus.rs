//! Corpus enumeration shared by the single-lake build and shard builders.
//!
//! [`VerifAi::build`](crate::VerifAi::build) and the `verifai-cluster`
//! shard builder must serialize the lake *identically* — same instance
//! order, same text, same chunking — or the sharded indexes would diverge
//! from the single-lake ones and break the scatter/gather identity
//! invariant. This module is the single definition of that enumeration.

use verifai_embed::{TextEmbedder, TextEmbedderConfig};
use verifai_lake::{DataLake, InstanceId};

use crate::config::VerifAiConfig;

/// One modality's serialized corpus, in lake iteration order.
#[derive(Debug, Clone, Default)]
pub struct ModalityCorpus {
    /// Entries for the content (BM25) index: one per instance.
    pub content: Vec<(InstanceId, String)>,
    /// Entries for the semantic index. For text documents these are
    /// overlapping sentence chunks (paper §3.1: "chunked text files"), each
    /// under the *document's* id; for every other modality they mirror
    /// `content`. Empty when semantic indexing is disabled.
    pub semantic: Vec<(InstanceId, String)>,
}

/// Serialize one modality of the lake (0 = tuples, 1 = tables, 2 = texts,
/// 3 = knowledge graph — the staged pipeline's slot order).
pub fn modality_corpus(lake: &DataLake, modality: usize, want_semantic: bool) -> ModalityCorpus {
    let mut corpus = ModalityCorpus::default();
    {
        let mut add = |id: InstanceId, text: String| {
            if want_semantic {
                corpus.semantic.push((id, text.clone()));
            }
            corpus.content.push((id, text));
        };
        match modality {
            0 => {
                for tuple_id in lake.tuple_ids() {
                    let tuple = lake.tuple(tuple_id).expect("registered tuple");
                    add(
                        InstanceId::Tuple(tuple_id),
                        verifai_text::serialize_tuple(&tuple),
                    );
                }
            }
            1 => {
                for table in lake.tables() {
                    add(
                        InstanceId::Table(table.id),
                        verifai_text::serialize_table(table),
                    );
                }
            }
            2 => {
                for doc in lake.docs() {
                    // The content index sees the whole document; the
                    // semantic index embeds overlapping sentence chunks,
                    // each under the document's id — the Combiner's dedup
                    // collapses multi-chunk hits.
                    let full = doc.full_text();
                    if want_semantic {
                        for chunk in verifai_text::chunk_sentences(&full, 3, 1) {
                            corpus.semantic.push((InstanceId::Text(doc.id), chunk.text));
                        }
                    }
                    corpus.content.push((InstanceId::Text(doc.id), full));
                }
            }
            _ => {
                for entity in lake.kg_entities() {
                    add(
                        InstanceId::Kg(entity.id),
                        verifai_text::serialize_kg(entity),
                    );
                }
            }
        }
    }
    corpus
}

/// The text embedder a system built from `config` uses — for queries and
/// for semantic index entries. Shard builders call this so per-shard
/// vectors are bit-identical to the single-lake build's.
pub fn embedder_for(config: &VerifAiConfig) -> TextEmbedder {
    TextEmbedder::new(TextEmbedderConfig {
        dim: config.embed_dim,
        seed: config.seed ^ 0xe3bd,
        ..TextEmbedderConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_datagen::{build, LakeSpec};
    use verifai_lake::InstanceKind;

    #[test]
    fn modalities_partition_the_lake() {
        let generated = build(&LakeSpec::tiny(7));
        let lake = &generated.lake;
        let kinds = [
            InstanceKind::Tuple,
            InstanceKind::Table,
            InstanceKind::Text,
            InstanceKind::Kg,
        ];
        for (modality, kind) in kinds.iter().enumerate() {
            let corpus = modality_corpus(lake, modality, true);
            assert!(!corpus.content.is_empty(), "modality {modality} empty");
            assert!(corpus.content.iter().all(|(id, _)| id.kind() == *kind));
            assert!(corpus.semantic.iter().all(|(id, _)| id.kind() == *kind));
            // Text chunks outnumber documents; other modalities mirror 1:1.
            if *kind == InstanceKind::Text {
                assert!(corpus.semantic.len() >= corpus.content.len());
            } else {
                assert_eq!(corpus.semantic.len(), corpus.content.len());
            }
        }
        let no_semantic = modality_corpus(lake, 0, false);
        assert!(no_semantic.semantic.is_empty());
        assert_eq!(no_semantic.content.len(), lake.num_tuples());
    }
}
