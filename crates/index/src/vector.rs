//! Semantic (vector) indexes: exact flat scan and HNSW approximate search.
//!
//! These are the Faiss / pgvector substitutes. Both index embedding vectors
//! under [`InstanceId`]s and return cosine-similarity-ranked hits.
//! [`FlatIndex`] is exact (and the recall reference); [`HnswIndex`] is the
//! approximate graph index real deployments use at the paper's corpus scale.
//!
//! ## The unit-norm invariant
//!
//! Both indexes **normalize every vector on `add`** (and on snapshot load,
//! when the snapshot does not already carry the
//! [`persist::FLAG_UNIT_NORM`] guarantee). With every stored vector unit,
//! cosine similarity degenerates to a single fused dot product
//! ([`Vector::dot_unit`]) — one pass over the data instead of the three a
//! raw `cosine` costs — for the flat scan and for every distance evaluated
//! during HNSW construction and search. Queries are normalized once at the
//! search (or insert) entry point. Scores are unchanged up to float
//! normalization error (≤ ~1e-6 for the already-unit embedder outputs).

//!
//! ## The quantized two-phase scan
//!
//! [`FlatIndex`] keeps an int8 **code sidecar** next to the f32 slabs:
//! every vector is symmetric-scalar-quantized on `add`
//! ([`verifai_embed::quant`]), codes live in one contiguous array (stride
//! `dim`, parallel to the rows, tombstones included, rebuilt on
//! compaction). In quantized mode `search` runs two phases: an int8 scan
//! over the codes selects an over-fetched shortlist of
//! `rescore_factor · k` candidates at a quarter of the memory traffic,
//! then the exact f32 kernel rescores the shortlist and truncates to
//! `k`. `rescore_factor = usize::MAX` rescores everything and is
//! byte-identical to the exact scan. [`VectorIndex::search_batch`] walks
//! the code array once per block for a whole batch of queries, so B
//! concurrent searches amortize one memory sweep.

use crate::hit::{sort_hits, SearchHit};
use crate::persist::{self, PersistError, SnapshotKind, FLAG_QUANT_CODES, FLAG_UNIT_NORM};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};
use verifai_embed::quant;
use verifai_embed::Vector;
use verifai_lake::InstanceId;
use verifai_obs::meter;

/// A unit-length copy of `query` (zero stays zero): the one normalization
/// a search pays, after which every candidate comparison is a single dot.
fn unit_query(query: &Vector) -> Vector {
    let mut q = query.clone();
    q.normalize();
    q
}

/// Common interface of the semantic indexes.
pub trait VectorIndex {
    /// Insert a vector under an id.
    fn add(&mut self, id: InstanceId, vector: Vector);
    /// Tombstone every entry stored under `id`; true when anything was
    /// removed. Tombstoned entries never appear in search results.
    fn remove(&mut self, id: InstanceId) -> bool;
    /// Top-k most similar entries (cosine).
    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit>;
    /// Top-k for each of `queries`, in order. The default runs the
    /// single-query search per query; [`FlatIndex`] overrides it with a
    /// blocked multi-query scan that walks the candidate array once per
    /// block for the whole batch (results are identical either way).
    fn search_batch(&self, queries: &[Vector], k: usize) -> Vec<Vec<SearchHit>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }
    /// Number of **live** (non-tombstoned) vectors.
    fn len(&self) -> usize;
    /// True when no live vectors remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Flat (exact) index
// ---------------------------------------------------------------------------

/// Exact nearest-neighbour index: brute-force cosine scan with a top-k heap.
///
/// Deletion is mark-and-skip: [`VectorIndex::remove`] tombstones the entry
/// and the scan skips it; once tombstones outnumber live entries the index
/// compacts itself (drops the dead rows, preserving live insertion order),
/// so a long mutation history cannot degrade scan cost past 2× live size.
///
/// Every vector is additionally int8-quantized on `add` into a contiguous
/// code sidecar (`codes`, stride `dim`, rows parallel to `ids` including
/// tombstones; `scales` holds the per-vector symmetric scale). With
/// `quantized` set ([`FlatIndex::new_quantized`] or
/// [`FlatIndex::set_quantized`]) searches run the two-phase scan: int8
/// shortlist of `rescore_factor · k`, exact f32 rescore, truncate to `k`.
#[derive(Debug)]
pub struct FlatIndex {
    ids: Vec<InstanceId>,
    vectors: Vec<Vector>,
    deleted: Vec<bool>,
    dead: usize,
    generation: u64,
    compactions: u64,
    /// Contiguous int8 codes, `dim` bytes per row, tombstoned rows included.
    codes: Vec<i8>,
    /// Per-row symmetric quantization scale.
    scales: Vec<f32>,
    /// Row stride of `codes`; fixed by the first `add` (0 while empty).
    dim: usize,
    /// Serve searches through the quantized two-phase scan.
    quantized: bool,
    /// Shortlist over-fetch: phase 1 keeps `rescore_factor · k` candidates.
    rescore_factor: usize,
}

/// Phase-1 shortlist over-fetch when none is configured explicitly.
pub const DEFAULT_RESCORE_FACTOR: usize = 4;

impl Default for FlatIndex {
    fn default() -> FlatIndex {
        FlatIndex {
            ids: Vec::new(),
            vectors: Vec::new(),
            deleted: Vec::new(),
            dead: 0,
            generation: 0,
            compactions: 0,
            codes: Vec::new(),
            scales: Vec::new(),
            dim: 0,
            quantized: false,
            rescore_factor: DEFAULT_RESCORE_FACTOR,
        }
    }
}

impl FlatIndex {
    /// Empty index serving exact scans.
    pub fn new() -> FlatIndex {
        FlatIndex::default()
    }

    /// Empty index serving quantized two-phase scans with the given
    /// shortlist over-fetch (`usize::MAX` rescores every candidate, which
    /// is byte-identical to the exact scan).
    pub fn new_quantized(rescore_factor: usize) -> FlatIndex {
        FlatIndex {
            quantized: true,
            rescore_factor: rescore_factor.max(1),
            ..FlatIndex::default()
        }
    }

    /// Switch between the exact scan and the quantized two-phase scan.
    /// The code sidecar is maintained either way, so this is a pure mode
    /// flip — no re-encode.
    pub fn set_quantized(&mut self, quantized: bool, rescore_factor: usize) {
        self.quantized = quantized;
        self.rescore_factor = rescore_factor.max(1);
    }

    /// True when searches run the quantized two-phase scan.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// The configured phase-1 shortlist over-fetch.
    pub fn rescore_factor(&self) -> usize {
        self.rescore_factor
    }

    /// Mutation generation: bumped on every add/remove, persisted in v3
    /// snapshots so a reloaded index resumes where the saved one stopped.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tombstoned entries not yet compacted away.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Times the live-count-triggered compaction has run.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Drop tombstoned entries now, preserving live insertion order. The
    /// code sidecar is rebuilt alongside (codes are copied, not
    /// re-derived — quantization is deterministic so both agree).
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let live = self.ids.len() - self.dead;
        let mut ids = Vec::with_capacity(live);
        let mut vectors = Vec::with_capacity(live);
        let mut codes = Vec::with_capacity(live * self.dim);
        let mut scales = Vec::with_capacity(live);
        for (ord, v) in self.vectors.drain(..).enumerate() {
            if !self.deleted[ord] {
                ids.push(self.ids[ord]);
                scales.push(self.scales[ord]);
                codes.extend_from_slice(&self.codes[ord * self.dim..(ord + 1) * self.dim]);
                vectors.push(v);
            }
        }
        self.ids = ids;
        self.vectors = vectors;
        self.codes = codes;
        self.scales = scales;
        self.deleted = vec![false; self.ids.len()];
        self.dead = 0;
        self.compactions += 1;
    }

    /// The int8 code row of entry `ord`.
    fn code_row(&self, ord: usize) -> &[i8] {
        &self.codes[ord * self.dim..(ord + 1) * self.dim]
    }
}

struct MinEntry {
    score: f64,
    ord: usize,
    id: InstanceId,
}
impl PartialEq for MinEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.ord == other.ord
    }
}
impl Eq for MinEntry {}
impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Evict smallest score first; among score ties, the largest
        // external id — the same total order `sort_hits` uses, so the k
        // survivors at a tied boundary match a whole-corpus scan's and
        // sharded top-k merge stays exact. The insertion ordinal breaks
        // the remaining (score, id) duplicates deterministically.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
            .then_with(|| self.ord.cmp(&other.ord))
    }
}

/// Offer `entry` to a worst-evicting top-`cap` heap. Outcome is identical
/// to `push` followed by a size-capped `pop`, but a full heap rejects a
/// would-be-evicted entry with one `peek` instead of sift-up + sift-down —
/// the common case on a scan, where most rows score below the current
/// boundary.
#[inline]
fn offer(heap: &mut BinaryHeap<MinEntry>, cap: usize, entry: MinEntry) {
    if heap.len() >= cap {
        // `>=` under MinEntry's reversed order: `entry` sorts at-or-before
        // the current worst, so pushing it would evict it right back.
        if heap.peek().is_some_and(|worst| entry >= *worst) {
            return;
        }
        heap.push(entry);
        heap.pop();
    } else {
        heap.push(entry);
    }
}

impl FlatIndex {
    /// Serialize the index into a version-4 binary snapshot: generation,
    /// scan mode (quantized flag + rescore factor), ids, tombstone bytes,
    /// every vector's components as one contiguous `f32` slab, then the
    /// quantization sidecar (per-row scales + the int8 code array) behind
    /// [`persist::FLAG_QUANT_CODES`] so a reload serves quantized scans
    /// without re-encoding.
    pub fn to_bytes(&self) -> Bytes {
        let dim = self.vectors.first().map(|v| v.dim()).unwrap_or(0);
        debug_assert!(
            self.vectors.iter().all(|v| v.dim() == dim),
            "flat index holds mixed dimensions"
        );
        let n = self.ids.len();
        let mut buf = BytesMut::with_capacity(48 + n * (14 + dim * 5));
        persist::put_header(
            &mut buf,
            SnapshotKind::Flat,
            FLAG_UNIT_NORM | FLAG_QUANT_CODES,
        );
        buf.put_u64_le(self.generation);
        buf.put_u8(self.quantized as u8);
        buf.put_u64_le(self.rescore_factor as u64);
        buf.put_u32_le(n as u32);
        buf.put_u32_le(dim as u32);
        for id in &self.ids {
            persist::put_instance_id(&mut buf, *id);
        }
        for &d in &self.deleted {
            buf.put_u8(d as u8);
        }
        for v in &self.vectors {
            for &x in v.as_slice() {
                buf.put_f32_le(x);
            }
        }
        for &s in &self.scales {
            buf.put_f32_le(s);
        }
        for &c in &self.codes {
            buf.put_u8(c as u8);
        }
        buf.freeze()
    }

    /// Serialize in the legacy version-3 wire format (no quantization
    /// sidecar or scan-mode fields). Kept as the fixture encoder for the
    /// migration tests: loading one must re-quantize to a bit-identical
    /// sidecar.
    pub fn to_bytes_v3(&self) -> Bytes {
        let dim = self.vectors.first().map(|v| v.dim()).unwrap_or(0);
        let n = self.ids.len();
        let mut buf = BytesMut::with_capacity(32 + n * (10 + dim * 4));
        persist::put_header_versioned(&mut buf, SnapshotKind::Flat, FLAG_UNIT_NORM, 3);
        buf.put_u64_le(self.generation);
        buf.put_u32_le(n as u32);
        buf.put_u32_le(dim as u32);
        for id in &self.ids {
            persist::put_instance_id(&mut buf, *id);
        }
        for &d in &self.deleted {
            buf.put_u8(d as u8);
        }
        for v in &self.vectors {
            for &x in v.as_slice() {
                buf.put_f32_le(x);
            }
        }
        buf.freeze()
    }

    /// Serialize in the legacy version-2 wire format (per-entry
    /// length-prefixed vectors, no generation or tombstones). Kept as the
    /// fixture encoder for migration tests and the cold-vs-warm load
    /// benchmark; the index must hold no tombstones (v2 cannot express them).
    pub fn to_bytes_v2(&self) -> Bytes {
        assert_eq!(self.dead, 0, "compact before encoding a v2 snapshot");
        let dim = self.vectors.first().map(|v| v.dim()).unwrap_or(0);
        let mut buf = BytesMut::with_capacity(16 + self.ids.len() * (13 + dim * 4));
        persist::put_header_versioned(&mut buf, SnapshotKind::Flat, FLAG_UNIT_NORM, 2);
        buf.put_u32_le(self.ids.len() as u32);
        for (id, v) in self.ids.iter().zip(self.vectors.iter()) {
            persist::put_instance_id(&mut buf, *id);
            put_vector(&mut buf, v);
        }
        buf.freeze()
    }

    /// Reconstruct an index from a snapshot produced by [`Self::to_bytes`]
    /// (or a legacy encoder).
    ///
    /// Version-3+ snapshots load zero-copy: the vector payload decodes in
    /// one bulk pass into a shared slab and every [`Vector`] borrows a view
    /// of it. Version-4 snapshots additionally reload their quantization
    /// sidecar and scan mode verbatim; older versions migrate on load —
    /// v1/v2 eagerly decode per entry (generation 0, no tombstones), any
    /// snapshot without [`persist::FLAG_QUANT_CODES`] re-quantizes its
    /// vectors (bit-identical to an eager writer's codes, quantization
    /// being pure), and any without [`persist::FLAG_UNIT_NORM`] predates
    /// the unit-norm invariant and is normalized, never silently
    /// mis-scored.
    pub fn from_bytes(mut buf: Bytes) -> Result<FlatIndex, PersistError> {
        let (version, flags) = persist::check_header(&mut buf, SnapshotKind::Flat)?;
        if version < 3 {
            let n = persist::get_u32(&mut buf)? as usize;
            let mut ids = Vec::with_capacity(n);
            let mut vectors = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(persist::get_instance_id(&mut buf)?);
                let mut v = get_vector(&mut buf)?;
                if flags & FLAG_UNIT_NORM == 0 {
                    v.normalize();
                }
                vectors.push(v);
            }
            let deleted = vec![false; ids.len()];
            let mut idx = FlatIndex {
                ids,
                vectors,
                deleted,
                ..FlatIndex::default()
            };
            idx.requantize();
            return Ok(idx);
        }
        let generation = persist::get_u64(&mut buf)?;
        let (quantized, rescore_factor) = if version >= 4 {
            let q = persist::get_u8(&mut buf)? != 0;
            let rf = (persist::get_u64(&mut buf)? as usize).max(1);
            (q, rf)
        } else {
            (false, DEFAULT_RESCORE_FACTOR)
        };
        let n = persist::get_u32(&mut buf)? as usize;
        let dim = persist::get_u32(&mut buf)? as usize;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(persist::get_instance_id(&mut buf)?);
        }
        let (deleted, dead) = get_tombstones(&mut buf, n)?;
        let slab = get_slab(&mut buf, n * dim)?;
        let mut vectors = Vec::with_capacity(n);
        for i in 0..n {
            let mut v = Vector::from_slab(slab.clone(), i * dim, dim);
            if flags & FLAG_UNIT_NORM == 0 {
                v.normalize();
            }
            vectors.push(v);
        }
        let mut idx = FlatIndex {
            ids,
            vectors,
            deleted,
            dead,
            generation,
            compactions: 0,
            codes: Vec::new(),
            scales: Vec::new(),
            dim,
            quantized,
            rescore_factor,
        };
        if flags & FLAG_QUANT_CODES != 0 {
            idx.scales = get_f32s(&mut buf, n)?;
            idx.codes = get_i8s(&mut buf, n * dim)?;
        } else {
            idx.requantize();
        }
        Ok(idx)
    }

    /// Rebuild the code sidecar from the (already unit) stored vectors —
    /// the migration path for snapshots that predate the codes.
    fn requantize(&mut self) {
        self.dim = self.vectors.first().map(|v| v.dim()).unwrap_or(self.dim);
        self.scales.clear();
        self.codes.clear();
        self.codes.reserve(self.vectors.len() * self.dim);
        for v in &self.vectors {
            let (codes, scale) = quant::quantize(v.as_slice());
            self.codes.extend_from_slice(&codes);
            self.scales.push(scale);
        }
    }
}

/// Encode a vector as `u32 dim + f32 components`.
fn put_vector(buf: &mut BytesMut, v: &Vector) {
    buf.put_u32_le(v.dim() as u32);
    for &x in v.as_slice() {
        buf.put_f32_le(x);
    }
}

/// Decode a vector.
fn get_vector(buf: &mut Bytes) -> Result<Vector, PersistError> {
    let dim = persist::get_u32(buf)? as usize;
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        v.push(persist::get_f32(buf)?);
    }
    Ok(Vector::from_vec(v))
}

/// Bulk-decode `count` little-endian f32s into one shared slab — the v3
/// zero-copy load path: one allocation for the whole vector payload, each
/// [`Vector`] then borrows a `(start, len)` view of it.
fn get_slab(buf: &mut Bytes, count: usize) -> Result<Arc<Vec<f32>>, PersistError> {
    if buf.remaining() < count * 4 {
        return Err(PersistError::Truncated);
    }
    let raw = buf.copy_to_bytes(count * 4);
    let mut slab = Vec::with_capacity(count);
    slab.extend(
        raw.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
    Ok(Arc::new(slab))
}

/// Bulk-decode `count` little-endian f32s into an owned vec (the
/// quantization scales — small next to the slab, so no sharing needed).
fn get_f32s(buf: &mut Bytes, count: usize) -> Result<Vec<f32>, PersistError> {
    if buf.remaining() < count * 4 {
        return Err(PersistError::Truncated);
    }
    let raw = buf.copy_to_bytes(count * 4);
    Ok(raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Bulk-decode `count` raw bytes as i8 codes.
fn get_i8s(buf: &mut Bytes, count: usize) -> Result<Vec<i8>, PersistError> {
    if buf.remaining() < count {
        return Err(PersistError::Truncated);
    }
    let raw = buf.copy_to_bytes(count);
    Ok(raw.iter().map(|&b| b as i8).collect())
}

/// Decode `n` tombstone bytes, returning the flags and the dead count.
fn get_tombstones(buf: &mut Bytes, n: usize) -> Result<(Vec<bool>, usize), PersistError> {
    if buf.remaining() < n {
        return Err(PersistError::Truncated);
    }
    let raw = buf.copy_to_bytes(n);
    let deleted: Vec<bool> = raw.iter().map(|&b| b != 0).collect();
    let dead = deleted.iter().filter(|&&d| d).count();
    Ok((deleted, dead))
}

impl FlatIndex {
    /// Run phase 1 of the two-phase scan for one encoded query over the
    /// rows `[lo, hi)`: int8 scores into the shortlist heap, capped at
    /// `shortlist` entries.
    fn quantized_scan_range(
        &self,
        qcodes: &[i8],
        qscale: f32,
        lo: usize,
        hi: usize,
        shortlist: usize,
        heap: &mut BinaryHeap<MinEntry>,
    ) {
        let mut scored = 0u64;
        for ord in lo..hi {
            if self.deleted[ord] {
                continue;
            }
            scored += 1;
            let score = quant::dot_i8(self.code_row(ord), qcodes) as f64
                * (self.scales[ord] * qscale) as f64;
            offer(
                heap,
                shortlist,
                MinEntry {
                    score,
                    ord,
                    id: self.ids[ord],
                },
            );
        }
        // One tally update per range, never per row: int8 codes are one
        // byte per dimension.
        meter::charge_quantized(scored, scored * self.dim as u64);
    }

    /// Phase 2: exact f32 rescore of a phase-1 shortlist, reorder, truncate.
    fn rescore(&self, heap: BinaryHeap<MinEntry>, q: &Vector, k: usize) -> Vec<SearchHit> {
        meter::charge_rescore(heap.len() as u64, (heap.len() * self.dim * 4) as u64);
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit::new(self.ids[e.ord], self.vectors[e.ord].dot_unit(q) as f64))
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    /// The phase-1 shortlist width for a top-`k` request.
    fn shortlist_len(&self, k: usize) -> usize {
        self.rescore_factor.saturating_mul(k)
    }
}

impl VectorIndex for FlatIndex {
    fn add(&mut self, id: InstanceId, mut vector: Vector) {
        vector.normalize();
        if self.ids.is_empty() {
            self.dim = vector.dim();
        }
        debug_assert_eq!(vector.dim(), self.dim, "flat index holds one dimension");
        let (codes, scale) = quant::quantize(vector.as_slice());
        self.codes.extend_from_slice(&codes);
        self.scales.push(scale);
        self.ids.push(id);
        self.vectors.push(vector);
        self.deleted.push(false);
        self.generation += 1;
    }

    fn remove(&mut self, id: InstanceId) -> bool {
        let mut any = false;
        for (ord, eid) in self.ids.iter().enumerate() {
            if *eid == id && !self.deleted[ord] {
                self.deleted[ord] = true;
                self.dead += 1;
                any = true;
            }
        }
        if any {
            self.generation += 1;
            if self.dead * 2 > self.ids.len() {
                self.compact();
            }
        }
        any
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        let q = unit_query(query);
        if self.quantized {
            // Phase 1: int8 scan over the code sidecar — a quarter of the
            // memory traffic — keeping a shortlist of rescore_factor · k.
            let (qcodes, qscale) = quant::quantize(q.as_slice());
            let shortlist = self.shortlist_len(k);
            let mut heap: BinaryHeap<MinEntry> =
                BinaryHeap::with_capacity(shortlist.min(self.ids.len()) + 1);
            self.quantized_scan_range(&qcodes, qscale, 0, self.ids.len(), shortlist, &mut heap);
            // Phase 2: exact rescore of the shortlist on the f32 slabs.
            return self.rescore(heap, &q, k);
        }
        let mut heap: BinaryHeap<MinEntry> = BinaryHeap::with_capacity(k + 1);
        let mut scored = 0u64;
        for (ord, v) in self.vectors.iter().enumerate() {
            if self.deleted[ord] {
                continue;
            }
            scored += 1;
            let score = v.dot_unit(&q) as f64;
            heap.push(MinEntry {
                score,
                ord,
                id: self.ids[ord],
            });
            if heap.len() > k {
                heap.pop();
            }
        }
        meter::charge_scan(scored, scored * (self.dim * 4) as u64);
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit::new(self.ids[e.ord], e.score))
            .collect();
        sort_hits(&mut hits);
        hits
    }

    /// Blocked multi-query scan: the candidate array is walked once per
    /// **block** for the whole batch, so B queries share every block's trip
    /// through the cache hierarchy instead of sweeping the corpus B times.
    /// Per-query results are identical to [`VectorIndex::search`] — each
    /// query's heap sees the same candidates in the same order.
    /// Blocked multi-query scan: **one sweep** of the stored rows serves the
    /// whole batch — each row (code row in quantized mode, f32 row in
    /// exact mode) is loaded once and scored against every query while hot,
    /// instead of B independent sweeps each re-reading the full array. The
    /// per-query heaps see rows in the same global order the single-query
    /// scan visits them, so results are identical to per-query
    /// [`VectorIndex::search`] calls.
    fn search_batch(&self, queries: &[Vector], k: usize) -> Vec<Vec<SearchHit>> {
        if k == 0 || queries.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        if queries.len() == 1 {
            return vec![self.search(&queries[0], k)];
        }
        let qs: Vec<Vector> = queries.iter().map(unit_query).collect();
        let n = self.ids.len();
        if self.quantized {
            let enc: Vec<(Vec<i8>, f32)> =
                qs.iter().map(|q| quant::quantize(q.as_slice())).collect();
            let shortlist = self.shortlist_len(k);
            let mut heaps: Vec<BinaryHeap<MinEntry>> = qs
                .iter()
                .map(|_| BinaryHeap::with_capacity(shortlist.min(n).saturating_add(1)))
                .collect();
            let mut scored = 0u64;
            for ord in 0..n {
                if self.deleted[ord] {
                    continue;
                }
                scored += 1;
                let row = self.code_row(ord);
                let scale = self.scales[ord];
                let id = self.ids[ord];
                for ((qcodes, qscale), heap) in enc.iter().zip(heaps.iter_mut()) {
                    let score = quant::dot_i8(row, qcodes) as f64 * (scale * qscale) as f64;
                    offer(heap, shortlist, MinEntry { score, ord, id });
                }
            }
            // Charged as if each query swept alone, so blocked and
            // per-query execution meter identically.
            let ops = scored * qs.len() as u64;
            meter::charge_quantized(ops, ops * self.dim as u64);
            return heaps
                .into_iter()
                .zip(qs.iter())
                .map(|(heap, q)| self.rescore(heap, q, k))
                .collect();
        }
        let mut heaps: Vec<BinaryHeap<MinEntry>> = qs
            .iter()
            .map(|_| BinaryHeap::with_capacity(k + 1))
            .collect();
        let mut scored = 0u64;
        for ord in 0..n {
            if self.deleted[ord] {
                continue;
            }
            scored += 1;
            let v = &self.vectors[ord];
            let id = self.ids[ord];
            for (q, heap) in qs.iter().zip(heaps.iter_mut()) {
                let score = v.dot_unit(q) as f64;
                offer(heap, k, MinEntry { score, ord, id });
            }
        }
        let ops = scored * qs.len() as u64;
        meter::charge_scan(ops, ops * (self.dim * 4) as u64);
        heaps
            .into_iter()
            .map(|heap| {
                let mut hits: Vec<SearchHit> = heap
                    .into_iter()
                    .map(|e| SearchHit::new(self.ids[e.ord], e.score))
                    .collect();
                sort_hits(&mut hits);
                hits
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.ids.len() - self.dead
    }
}

// ---------------------------------------------------------------------------
// HNSW (approximate) index
// ---------------------------------------------------------------------------

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers > 0 (layer 0 uses `2 * m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during search.
    pub ef_search: usize,
    /// Seed for the (deterministic) level generator.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x9e37,
        }
    }
}

/// One directed HNSW edge with the endpoint distance cached at creation
/// time. Stored vectors are immutable (and unit), so the cache is exact:
/// `connect`'s back-link prune sorts on it instead of cloning the node's
/// vector and re-scoring every neighbour. Snapshots store only the ordinal;
/// distances are re-derived on load.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbor {
    ord: u32,
    dist: f64,
}

#[derive(Debug)]
struct HnswNode {
    id: InstanceId,
    vector: Vector,
    /// Adjacency per layer; `neighbors[l]` exists for l <= node level.
    neighbors: Vec<Vec<Neighbor>>,
}

/// Hierarchical Navigable Small World graph over cosine similarity.
///
/// Insertion has always been incremental (the graph grows one node at a
/// time); deletion is tombstoning — removed nodes keep their edges and keep
/// routing searches, they just cannot be returned. Search over-fetches by
/// the tombstone count so `k` live results still come back, and an explicit
/// [`HnswIndex::compact`] rebuilds the graph from the live nodes when the
/// caller decides the dead weight is worth shedding.
#[derive(Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    nodes: Vec<HnswNode>,
    entry: Option<u32>,
    max_level: usize,
    deleted: Vec<bool>,
    dead: usize,
    generation: u64,
    compactions: u64,
    /// Pooled visited buffer for `search_layer`: epoch-stamped so reuse is
    /// an epoch bump, not a clear. Behind a mutex only so `&self` searches
    /// can borrow it; a concurrent search that finds it taken falls back to
    /// a fresh buffer rather than waiting.
    visited: Mutex<VisitedSet>,
}

/// Epoch-stamped visited set: `stamps[ord] == epoch` means "seen this
/// search". `begin` bumps the epoch, which invalidates every stamp at once
/// — no per-search allocation, no O(n) clear (except on the ~4-billionth
/// search, when the epoch wraps and stamps reset).
#[derive(Debug, Default)]
struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Start a new search over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Mark `ord` visited; true when it was not already.
    fn insert(&mut self, ord: u32) -> bool {
        let s = &mut self.stamps[ord as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }
}

/// Hint the prefetcher at a node's vector ahead of the dot that will read
/// it — the descent loops touch neighbours whose slabs the hardware
/// stride prefetcher cannot predict. No-op off x86_64.
#[inline(always)]
fn prefetch_slice(v: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch(v.as_ptr() as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = v;
}

impl HnswIndex {
    /// Empty index with the given parameters.
    pub fn new(config: HnswConfig) -> HnswIndex {
        HnswIndex {
            config,
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
            deleted: Vec::new(),
            dead: 0,
            generation: 0,
            compactions: 0,
            visited: Mutex::new(VisitedSet::default()),
        }
    }

    /// Empty index with default parameters.
    pub fn with_defaults() -> HnswIndex {
        HnswIndex::new(HnswConfig::default())
    }

    /// Candidate-list width used at search time.
    pub fn ef_search(&self) -> usize {
        self.config.ef_search
    }

    /// Retune the search-time candidate-list width. Construction parameters
    /// are fixed at build, but `ef_search` only shapes queries — the
    /// recall/latency frontier benchmark sweeps it on a standing graph.
    pub fn set_ef_search(&mut self, ef_search: usize) {
        self.config.ef_search = ef_search.max(1);
    }

    /// Mutation generation: bumped on every add/remove, persisted in v3
    /// snapshots.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tombstoned nodes still in the graph.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Times [`HnswIndex::compact`] has rebuilt the graph.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Rebuild the graph from the live nodes (insertion order preserved),
    /// shedding tombstones. Unlike the flat index this is not triggered
    /// automatically: a rebuild re-runs construction, so the caller (the
    /// segmented merge scheduler, an operator) decides when it pays.
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let mut fresh = HnswIndex::new(self.config);
        for (ord, node) in self.nodes.drain(..).enumerate() {
            if !self.deleted[ord] {
                fresh.add(node.id, node.vector);
            }
        }
        fresh.generation = self.generation;
        fresh.compactions = self.compactions + 1;
        *self = fresh;
    }

    /// Cosine *distance* (1 - similarity): lower is closer. A single fused
    /// dot — both operands are unit by the index invariant (`q` must be
    /// pre-normalized by the caller, which `add`/`search` guarantee).
    fn dist(&self, a: u32, q: &Vector) -> f64 {
        1.0 - self.nodes[a as usize].vector.dot_unit(q) as f64
    }

    /// Deterministic geometric level for the `ord`-th insertion.
    fn draw_level(&self, ord: usize) -> usize {
        // P(level >= l) = (1/m)^l, derived from a hash of (seed, ord).
        let mut h = verifai_embed::hashing::splitmix64(self.config.seed ^ (ord as u64) << 1);
        let mut level = 0usize;
        let threshold = u64::MAX / self.config.m.max(2) as u64;
        while h < threshold && level < 16 {
            level += 1;
            h = verifai_embed::hashing::splitmix64(h);
        }
        level
    }

    /// Greedy descent from the entry point to the closest node at `layer`.
    /// Each neighbour's vector is prefetched one step ahead of the dot that
    /// scores it, hiding the slab miss behind the current evaluation.
    fn greedy_at_layer(&self, start: u32, q: &Vector, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = self.dist(cur, q);
        let mut evals = 1u64;
        loop {
            let mut improved = false;
            let edges = &self.nodes[cur as usize].neighbors[layer];
            evals += edges.len() as u64;
            for (i, e) in edges.iter().enumerate() {
                if let Some(next) = edges.get(i + 1) {
                    prefetch_slice(self.nodes[next.ord as usize].vector.as_slice());
                }
                let d = self.dist(e.ord, q);
                if d < cur_d {
                    cur = e.ord;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                meter::charge_scan(evals, evals * (q.dim() * 4) as u64);
                return cur;
            }
        }
    }

    /// Best-first search at one layer, returning up to `ef` closest candidates
    /// as (distance, ordinal) sorted ascending by distance.
    ///
    /// The visited set comes from the pooled epoch-stamped buffer (taken
    /// for the duration of the call; concurrent searches that find the
    /// pool taken use a fresh buffer), so steady-state searches allocate
    /// nothing for visit tracking.
    fn search_layer(&self, entry: u32, q: &Vector, layer: usize, ef: usize) -> Vec<(f64, u32)> {
        let mut visited: VisitedSet = self
            .visited
            .try_lock()
            .map(|mut pool| std::mem::take(&mut *pool))
            .unwrap_or_default();
        visited.begin(self.nodes.len());
        visited.insert(entry);
        let mut evals = 1u64;
        let d0 = self.dist(entry, q);
        // Candidates: min-dist first (use Reverse ordering via negated compare).
        let mut candidates: BinaryHeap<CandEntry> = BinaryHeap::new();
        candidates.push(CandEntry {
            dist: d0,
            ord: entry,
            min_first: true,
        });
        // Results: max-dist first so the worst can be evicted.
        let mut results: BinaryHeap<CandEntry> = BinaryHeap::new();
        results.push(CandEntry {
            dist: d0,
            ord: entry,
            min_first: false,
        });

        while let Some(c) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f64::INFINITY);
            if c.dist > worst && results.len() >= ef {
                break;
            }
            let edges = &self.nodes[c.ord as usize].neighbors[layer];
            for (i, e) in edges.iter().enumerate() {
                if let Some(next) = edges.get(i + 1) {
                    prefetch_slice(self.nodes[next.ord as usize].vector.as_slice());
                }
                if !visited.insert(e.ord) {
                    continue;
                }
                evals += 1;
                let d = self.dist(e.ord, q);
                let worst = results.peek().map(|r| r.dist).unwrap_or(f64::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(CandEntry {
                        dist: d,
                        ord: e.ord,
                        min_first: true,
                    });
                    results.push(CandEntry {
                        dist: d,
                        ord: e.ord,
                        min_first: false,
                    });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        meter::charge_scan(evals, evals * (q.dim() * 4) as u64);
        // Return the buffer to the pool for the next search.
        if let Ok(mut pool) = self.visited.try_lock() {
            *pool = visited;
        }
        let mut out: Vec<(f64, u32)> = results.into_iter().map(|e| (e.dist, e.ord)).collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        out
    }

    /// Connect `node` to the closest `max_conn` of `candidates` at `layer`,
    /// and back-link with pruning.
    ///
    /// The `search_layer` distances ride along into the edge cache, and the
    /// back-link reuses them (the fused dot is symmetric), so pruning a
    /// neighbour's over-full list is a sort over cached values: no vector
    /// clone, no re-scoring of edges that were already scored when created.
    fn connect(&mut self, node: u32, candidates: &[(f64, u32)], layer: usize, max_conn: usize) {
        let selected: Vec<Neighbor> = candidates
            .iter()
            .take(max_conn)
            .filter(|&&(_, o)| o != node)
            .map(|&(dist, ord)| Neighbor { ord, dist })
            .collect();
        self.nodes[node as usize].neighbors[layer] = selected.clone();
        for e in &selected {
            let nv = &mut self.nodes[e.ord as usize].neighbors[layer];
            if nv.iter().any(|x| x.ord == node) {
                continue;
            }
            nv.push(Neighbor {
                ord: node,
                dist: e.dist,
            });
            if nv.len() > max_conn {
                // Prune: keep the max_conn closest neighbours of e.ord.
                nv.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap_or(Ordering::Equal));
                nv.truncate(max_conn);
            }
        }
    }
}

struct CandEntry {
    dist: f64,
    ord: u32,
    /// true = min-heap behaviour (closest first), false = max-heap (farthest first).
    min_first: bool,
}
impl PartialEq for CandEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.ord == other.ord
    }
}
impl Eq for CandEntry {}
impl PartialOrd for CandEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CandEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        let ord = self
            .dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.ord.cmp(&other.ord));
        if self.min_first {
            ord.reverse()
        } else {
            ord
        }
    }
}

impl HnswIndex {
    /// Serialize the graph into a version-3 binary snapshot: generation,
    /// config, ids, tombstones, adjacency **with cached edge distances**,
    /// then every vector's components as one contiguous `f32` slab. Storing
    /// the distances means load skips the O(edges) re-derivation pass the
    /// v1/v2 format paid, and the slab makes the vector payload one bulk
    /// decode — together this is what makes warm restart near-instant.
    pub fn to_bytes(&self) -> Bytes {
        let dim = self.nodes.first().map(|n| n.vector.dim()).unwrap_or(0);
        debug_assert!(
            self.nodes.iter().all(|n| n.vector.dim() == dim),
            "hnsw index holds mixed dimensions"
        );
        let payload: usize = self
            .nodes
            .iter()
            .map(|n| 10 + dim * 4 + n.neighbors.iter().map(|l| 4 + 12 * l.len()).sum::<usize>())
            .sum();
        let mut buf = BytesMut::with_capacity(64 + payload);
        persist::put_header(&mut buf, SnapshotKind::Hnsw, FLAG_UNIT_NORM);
        buf.put_u64_le(self.generation);
        buf.put_u32_le(self.config.m as u32);
        buf.put_u32_le(self.config.ef_construction as u32);
        buf.put_u32_le(self.config.ef_search as u32);
        buf.put_u64_le(self.config.seed);
        buf.put_u32_le(self.max_level as u32);
        match self.entry {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u32_le(e);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(self.nodes.len() as u32);
        buf.put_u32_le(dim as u32);
        for node in &self.nodes {
            persist::put_instance_id(&mut buf, node.id);
        }
        for &d in &self.deleted {
            buf.put_u8(d as u8);
        }
        for node in &self.nodes {
            buf.put_u32_le(node.neighbors.len() as u32);
            for layer in &node.neighbors {
                buf.put_u32_le(layer.len() as u32);
                for e in layer {
                    buf.put_u32_le(e.ord);
                    buf.put_f64_le(e.dist);
                }
            }
        }
        for node in &self.nodes {
            for &x in node.vector.as_slice() {
                buf.put_f32_le(x);
            }
        }
        buf.freeze()
    }

    /// Serialize in the legacy version-2 wire format (per-entry
    /// length-prefixed vectors, ordinal-only adjacency, no generation or
    /// tombstones — distances re-derived on load). Fixture encoder for
    /// migration tests and the cold-load benchmark; the graph must hold no
    /// tombstones (v2 cannot express them).
    pub fn to_bytes_v2(&self) -> Bytes {
        assert_eq!(self.dead, 0, "compact before encoding a v2 snapshot");
        let payload: usize = self
            .nodes
            .iter()
            .map(|n| {
                17 + n.vector.dim() * 4 + n.neighbors.iter().map(|l| 4 + 4 * l.len()).sum::<usize>()
            })
            .sum();
        let mut buf = BytesMut::with_capacity(48 + payload);
        persist::put_header_versioned(&mut buf, SnapshotKind::Hnsw, FLAG_UNIT_NORM, 2);
        buf.put_u32_le(self.config.m as u32);
        buf.put_u32_le(self.config.ef_construction as u32);
        buf.put_u32_le(self.config.ef_search as u32);
        buf.put_u64_le(self.config.seed);
        buf.put_u32_le(self.max_level as u32);
        match self.entry {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u32_le(e);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(self.nodes.len() as u32);
        for node in &self.nodes {
            persist::put_instance_id(&mut buf, node.id);
            put_vector(&mut buf, &node.vector);
            buf.put_u32_le(node.neighbors.len() as u32);
            for layer in &node.neighbors {
                buf.put_u32_le(layer.len() as u32);
                for e in layer {
                    buf.put_u32_le(e.ord);
                }
            }
        }
        buf.freeze()
    }

    /// Reconstruct the graph from a snapshot produced by [`Self::to_bytes`]
    /// (or a legacy encoder).
    ///
    /// Version-3 snapshots load zero-copy (shared vector slab) with their
    /// cached edge distances intact. Version-1/2 snapshots migrate on load:
    /// eager per-entry vector decode, distances re-derived, generation 0,
    /// no tombstones; vectors without [`persist::FLAG_UNIT_NORM`] are
    /// normalized.
    pub fn from_bytes(mut buf: Bytes) -> Result<HnswIndex, PersistError> {
        let (version, flags) = persist::check_header(&mut buf, SnapshotKind::Hnsw)?;
        let generation = if version >= 3 {
            persist::get_u64(&mut buf)?
        } else {
            0
        };
        let m = persist::get_u32(&mut buf)? as usize;
        let ef_construction = persist::get_u32(&mut buf)? as usize;
        let ef_search = persist::get_u32(&mut buf)? as usize;
        let seed = persist::get_u64(&mut buf)?;
        let max_level = persist::get_u32(&mut buf)? as usize;
        let entry = match persist::get_u8(&mut buf)? {
            0 => None,
            1 => Some(persist::get_u32(&mut buf)?),
            other => return Err(PersistError::BadTag(other)),
        };
        let n = persist::get_u32(&mut buf)? as usize;
        let config = HnswConfig {
            m,
            ef_construction,
            ef_search,
            seed,
        };

        if version >= 3 {
            let dim = persist::get_u32(&mut buf)? as usize;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(persist::get_instance_id(&mut buf)?);
            }
            let (deleted, dead) = get_tombstones(&mut buf, n)?;
            let mut adjacency = Vec::with_capacity(n);
            for _ in 0..n {
                let n_layers = persist::get_u32(&mut buf)? as usize;
                let mut neighbors = Vec::with_capacity(n_layers);
                for _ in 0..n_layers {
                    let len = persist::get_u32(&mut buf)? as usize;
                    let mut layer = Vec::with_capacity(len);
                    for _ in 0..len {
                        let ord = persist::get_u32(&mut buf)?;
                        if ord as usize >= n {
                            return Err(PersistError::BadTag(ord as u8));
                        }
                        let dist = persist::get_f64(&mut buf)?;
                        layer.push(Neighbor { ord, dist });
                    }
                    neighbors.push(layer);
                }
                adjacency.push(neighbors);
            }
            let slab = get_slab(&mut buf, n * dim)?;
            let nodes: Vec<HnswNode> = ids
                .into_iter()
                .zip(adjacency)
                .enumerate()
                .map(|(i, (id, neighbors))| {
                    let mut vector = Vector::from_slab(slab.clone(), i * dim, dim);
                    if flags & FLAG_UNIT_NORM == 0 {
                        vector.normalize();
                    }
                    HnswNode {
                        id,
                        vector,
                        neighbors,
                    }
                })
                .collect();
            return Ok(HnswIndex {
                config,
                nodes,
                entry,
                max_level,
                deleted,
                dead,
                generation,
                compactions: 0,
                visited: Mutex::new(VisitedSet::default()),
            });
        }

        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let id = persist::get_instance_id(&mut buf)?;
            let mut vector = get_vector(&mut buf)?;
            if flags & FLAG_UNIT_NORM == 0 {
                vector.normalize();
            }
            let n_layers = persist::get_u32(&mut buf)? as usize;
            let mut neighbors = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let len = persist::get_u32(&mut buf)? as usize;
                let mut layer = Vec::with_capacity(len);
                for _ in 0..len {
                    let ord = persist::get_u32(&mut buf)?;
                    if ord as usize >= n {
                        return Err(PersistError::BadTag(ord as u8));
                    }
                    layer.push(Neighbor { ord, dist: 0.0 });
                }
                neighbors.push(layer);
            }
            nodes.push(HnswNode {
                id,
                vector,
                neighbors,
            });
        }
        // Re-derive the cached edge distances from the (now unit) vectors.
        #[allow(clippy::needless_range_loop)]
        for i in 0..nodes.len() {
            for l in 0..nodes[i].neighbors.len() {
                for j in 0..nodes[i].neighbors[l].len() {
                    let o = nodes[i].neighbors[l][j].ord as usize;
                    let d = 1.0 - nodes[i].vector.dot_unit(&nodes[o].vector) as f64;
                    nodes[i].neighbors[l][j].dist = d;
                }
            }
        }
        let deleted = vec![false; nodes.len()];
        Ok(HnswIndex {
            config,
            nodes,
            entry,
            max_level,
            deleted,
            dead: 0,
            generation,
            compactions: 0,
            visited: Mutex::new(VisitedSet::default()),
        })
    }
}

impl VectorIndex for HnswIndex {
    fn add(&mut self, id: InstanceId, mut vector: Vector) {
        vector.normalize();
        let ord = self.nodes.len() as u32;
        let level = self.draw_level(ord as usize);
        self.deleted.push(false);
        self.generation += 1;
        self.nodes.push(HnswNode {
            id,
            vector,
            neighbors: vec![Vec::new(); level + 1],
        });
        // Already unit: every `dist` during construction is a single dot.
        let q = self.nodes[ord as usize].vector.clone();

        let Some(mut entry) = self.entry else {
            self.entry = Some(ord);
            self.max_level = level;
            return;
        };

        // Descend from the top layer to level+1 greedily.
        for l in ((level + 1)..=self.max_level).rev() {
            entry = self.greedy_at_layer(entry, &q, l);
        }
        // Insert at each layer from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(entry, &q, l, self.config.ef_construction);
            let max_conn = if l == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            self.connect(ord, &found, l, max_conn);
            if let Some(&(_, best)) = found.first() {
                entry = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(ord);
        }
    }

    fn remove(&mut self, id: InstanceId) -> bool {
        let mut any = false;
        for (ord, node) in self.nodes.iter().enumerate() {
            if node.id == id && !self.deleted[ord] {
                self.deleted[ord] = true;
                self.dead += 1;
                any = true;
            }
        }
        if any {
            self.generation += 1;
        }
        any
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 || self.dead == self.nodes.len() {
            return Vec::new();
        }
        let q = unit_query(query);
        for l in (1..=self.max_level).rev() {
            entry = self.greedy_at_layer(entry, &q, l);
        }
        // Over-fetch by the tombstone count: dead nodes still route (their
        // edges are intact) but cannot be returned, so widening the
        // candidate list keeps `k` honored after filtering.
        let ef = (self.config.ef_search.max(k) + self.dead).min(self.nodes.len());
        let found = self.search_layer(entry, &q, 0, ef);
        let mut hits: Vec<SearchHit> = found
            .into_iter()
            .filter(|&(_, o)| !self.deleted[o as usize])
            .take(k)
            .map(|(d, o)| SearchHit::new(self.nodes[o as usize].id, 1.0 - d))
            .collect();
        sort_hits(&mut hits);
        hits
    }

    fn len(&self) -> usize {
        self.nodes.len() - self.dead
    }
}

// ---------------------------------------------------------------------------
// Backend-erased index
// ---------------------------------------------------------------------------

/// Either semantic index behind one concrete type, so shard slots and the
/// live layer can hold whichever backend the config chose while still
/// reaching the full mutable surface (remove/compact/snapshot) that a
/// `dyn VectorIndex` would erase.
#[derive(Debug)]
pub enum AnyVectorIndex {
    /// Exact flat scan.
    Flat(FlatIndex),
    /// Approximate HNSW graph.
    Hnsw(HnswIndex),
}

impl AnyVectorIndex {
    /// The backend's short name (matches its `EvidenceSource` name).
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyVectorIndex::Flat(_) => "flat",
            AnyVectorIndex::Hnsw(_) => "hnsw",
        }
    }

    /// Mutation generation of the wrapped index.
    pub fn generation(&self) -> u64 {
        match self {
            AnyVectorIndex::Flat(i) => i.generation(),
            AnyVectorIndex::Hnsw(i) => i.generation(),
        }
    }

    /// Tombstoned entries in the wrapped index.
    pub fn tombstones(&self) -> usize {
        match self {
            AnyVectorIndex::Flat(i) => i.tombstones(),
            AnyVectorIndex::Hnsw(i) => i.tombstones(),
        }
    }

    /// Compactions the wrapped index has run.
    pub fn compactions(&self) -> u64 {
        match self {
            AnyVectorIndex::Flat(i) => i.compactions(),
            AnyVectorIndex::Hnsw(i) => i.compactions(),
        }
    }

    /// Force a compaction of the wrapped index.
    pub fn compact(&mut self) {
        match self {
            AnyVectorIndex::Flat(i) => i.compact(),
            AnyVectorIndex::Hnsw(i) => i.compact(),
        }
    }

    /// Snapshot the wrapped index (the kind tag records which backend).
    pub fn to_bytes(&self) -> Bytes {
        match self {
            AnyVectorIndex::Flat(i) => i.to_bytes(),
            AnyVectorIndex::Hnsw(i) => i.to_bytes(),
        }
    }

    /// Reload whichever backend the snapshot holds, dispatching on its kind
    /// tag.
    pub fn from_bytes(buf: Bytes) -> Result<AnyVectorIndex, PersistError> {
        match persist::peek_kind(&buf)? {
            x if x == SnapshotKind::Flat as u8 => {
                Ok(AnyVectorIndex::Flat(FlatIndex::from_bytes(buf)?))
            }
            x if x == SnapshotKind::Hnsw as u8 => {
                Ok(AnyVectorIndex::Hnsw(HnswIndex::from_bytes(buf)?))
            }
            other => Err(PersistError::BadKind {
                expected: SnapshotKind::Flat as u8,
                got: other,
            }),
        }
    }
}

impl VectorIndex for AnyVectorIndex {
    fn add(&mut self, id: InstanceId, vector: Vector) {
        match self {
            AnyVectorIndex::Flat(i) => i.add(id, vector),
            AnyVectorIndex::Hnsw(i) => i.add(id, vector),
        }
    }

    fn remove(&mut self, id: InstanceId) -> bool {
        match self {
            AnyVectorIndex::Flat(i) => VectorIndex::remove(i, id),
            AnyVectorIndex::Hnsw(i) => VectorIndex::remove(i, id),
        }
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        match self {
            AnyVectorIndex::Flat(i) => i.search(query, k),
            AnyVectorIndex::Hnsw(i) => i.search(query, k),
        }
    }

    fn search_batch(&self, queries: &[Vector], k: usize) -> Vec<Vec<SearchHit>> {
        match self {
            AnyVectorIndex::Flat(i) => i.search_batch(queries, k),
            AnyVectorIndex::Hnsw(i) => i.search_batch(queries, k),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyVectorIndex::Flat(i) => i.len(),
            AnyVectorIndex::Hnsw(i) => i.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use verifai_embed::TextEmbedder;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Text(i)
    }

    fn corpus() -> Vec<(InstanceId, Vector)> {
        let e = TextEmbedder::with_seed(11);
        let texts = [
            "united states house election new york district",
            "house election results new york representatives",
            "basketball career points michael jordan bulls",
            "dance drama film stomp the yard 2007",
            "track and field championship 1959 ncaa",
            "actress meagan good film roles",
            "governor election ohio incumbent",
            "chicago bulls championship 1997 season",
        ];
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (tid(i as u64), e.embed(t)))
            .collect()
    }

    #[test]
    fn flat_finds_semantic_neighbour() {
        let mut idx = FlatIndex::new();
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        let e = TextEmbedder::with_seed(11);
        let hits = idx.search(&e.embed("new york house election"), 2);
        assert!(hits[0].id == tid(0) || hits[0].id == tid(1));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn flat_k_zero_and_empty() {
        let idx = FlatIndex::new();
        let e = TextEmbedder::with_seed(11);
        assert!(idx.search(&e.embed("x"), 3).is_empty());
        let mut idx = FlatIndex::new();
        idx.add(tid(0), e.embed("abc"));
        assert!(idx.search(&e.embed("abc"), 0).is_empty());
    }

    #[test]
    fn hnsw_matches_flat_on_small_corpus() {
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        let e = TextEmbedder::with_seed(11);
        for q in [
            "jordan basketball points",
            "film actress",
            "election district",
        ] {
            let qv = e.embed(q);
            let f = flat.search(&qv, 3);
            let h = hnsw.search(&qv, 3);
            assert_eq!(f[0].id, h[0].id, "query '{q}' disagrees at rank 1");
        }
    }

    #[test]
    fn hnsw_recall_at_10_on_larger_corpus() {
        // 300 synthetic points; HNSW must achieve high recall@10 vs flat.
        let e = TextEmbedder::with_seed(3);
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::new(HnswConfig {
            ef_search: 80,
            ..HnswConfig::default()
        });
        for i in 0..300u64 {
            let text = format!("entity {} topic {} attribute {}", i, i % 17, i % 7);
            let v = e.embed(&text);
            flat.add(tid(i), v.clone());
            hnsw.add(tid(i), v);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..20u64 {
            let qv = e.embed(&format!(
                "entity {} topic {}",
                q * 13 % 300,
                (q * 13 % 300) % 17
            ));
            let truth: HashSet<InstanceId> =
                flat.search(&qv, 10).into_iter().map(|h| h.id).collect();
            for h in hnsw.search(&qv, 10) {
                total += 1;
                if truth.contains(&h.id) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.8, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn hnsw_deterministic() {
        let build = || {
            let mut h = HnswIndex::with_defaults();
            for (id, v) in corpus() {
                h.add(id, v);
            }
            h
        };
        let e = TextEmbedder::with_seed(11);
        let q = e.embed("championship season");
        assert_eq!(build().search(&q, 4), build().search(&q, 4));
    }

    #[test]
    fn hnsw_single_element() {
        let mut h = HnswIndex::with_defaults();
        let e = TextEmbedder::with_seed(11);
        h.add(tid(9), e.embed("lonely document"));
        let hits = h.search(&e.embed("lonely"), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, tid(9));
    }

    #[test]
    fn snapshots_roundtrip_both_vector_indexes() {
        let e = TextEmbedder::with_seed(11);
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        let flat2 = FlatIndex::from_bytes(flat.to_bytes()).unwrap();
        let hnsw2 = HnswIndex::from_bytes(hnsw.to_bytes()).unwrap();
        for q in [
            "jordan basketball",
            "election district new york",
            "film actress",
        ] {
            let qv = e.embed(q);
            assert_eq!(flat.search(&qv, 4), flat2.search(&qv, 4), "flat query {q}");
            assert_eq!(hnsw.search(&qv, 4), hnsw2.search(&qv, 4), "hnsw query {q}");
        }
        // A restored graph keeps growing correctly.
        let mut hnsw3 = HnswIndex::from_bytes(hnsw.to_bytes()).unwrap();
        hnsw3.add(tid(99), e.embed("brand new document about elections"));
        assert_eq!(hnsw3.len(), hnsw.len() + 1);
        let hits = hnsw3.search(&e.embed("brand new document"), 1);
        assert_eq!(hits[0].id, tid(99));
    }

    #[test]
    fn snapshot_garbage_rejected() {
        assert!(FlatIndex::from_bytes(bytes::Bytes::from_static(b"nah")).is_err());
        assert!(HnswIndex::from_bytes(bytes::Bytes::from_static(b"VFAI\x01\x02")).is_err());
    }

    #[test]
    fn add_normalizes_to_unit_invariant() {
        // A vector and its scaled copy index identically: `add` owns the
        // unit-norm invariant, so scores are cosines, not raw dots.
        let mut a = FlatIndex::new();
        let mut b = FlatIndex::new();
        a.add(tid(0), Vector::from_vec(vec![3.0, 4.0, 0.0]));
        b.add(tid(0), Vector::from_vec(vec![30.0, 40.0, 0.0]));
        let q = Vector::from_vec(vec![1.0, 1.0, 0.0]);
        let ha = a.search(&q, 1);
        let hb = b.search(&q, 1);
        assert_eq!(ha, hb);
        let expect = Vector::from_vec(vec![3.0, 4.0, 0.0]).cosine(&q) as f64;
        assert!((ha[0].score - expect).abs() < 1e-6);
    }

    #[test]
    fn v1_flat_snapshot_migrates_by_normalizing() {
        // Hand-encode a version-1 Flat snapshot (no flags byte) holding a
        // deliberately non-unit vector, as the pre-invariant encoder could.
        let mut buf = BytesMut::new();
        buf.put_slice(b"VFAI\x01");
        buf.put_u8(SnapshotKind::Flat as u8);
        buf.put_u32_le(1);
        persist::put_instance_id(&mut buf, tid(7));
        put_vector(&mut buf, &Vector::from_vec(vec![3.0, 4.0]));
        let idx = FlatIndex::from_bytes(buf.freeze()).unwrap();
        let hits = idx.search(&Vector::from_vec(vec![1.0, 0.0]), 1);
        assert_eq!(hits[0].id, tid(7));
        // cosine([3,4],[1,0]) = 0.6; an unmigrated raw dot would score 3.0.
        assert!(
            (hits[0].score - 0.6).abs() < 1e-6,
            "migrated vector must be normalized, got score {}",
            hits[0].score
        );
    }

    #[test]
    fn v1_hnsw_snapshot_migrates_by_normalizing() {
        // Minimal version-1 graph: one level-0 node with a non-unit vector.
        let mut buf = BytesMut::new();
        buf.put_slice(b"VFAI\x01");
        buf.put_u8(SnapshotKind::Hnsw as u8);
        buf.put_u32_le(16); // m
        buf.put_u32_le(100); // ef_construction
        buf.put_u32_le(64); // ef_search
        buf.put_u64_le(0x9e37); // seed
        buf.put_u32_le(0); // max_level
        buf.put_u8(1);
        buf.put_u32_le(0); // entry = node 0
        buf.put_u32_le(1); // node count
        persist::put_instance_id(&mut buf, tid(5));
        put_vector(&mut buf, &Vector::from_vec(vec![0.0, 3.0, 4.0]));
        buf.put_u32_le(1); // one layer
        buf.put_u32_le(0); // no neighbours
        let idx = HnswIndex::from_bytes(buf.freeze()).unwrap();
        let hits = idx.search(&Vector::from_vec(vec![0.0, 1.0, 0.0]), 1);
        assert_eq!(hits[0].id, tid(5));
        assert!(
            (hits[0].score - 0.6).abs() < 1e-6,
            "migrated vector must be normalized, got score {}",
            hits[0].score
        );
    }

    #[test]
    fn v1_hnsw_snapshot_body_decodes_identically() {
        // The v2 body is byte-for-byte the v1 body; only the header differs.
        // A real pre-invariant snapshot (unit vectors, same graph wire
        // format) must reload to an equivalent graph.
        let e = TextEmbedder::with_seed(11);
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            hnsw.add(id, v);
        }
        let v2 = hnsw.to_bytes_v2();
        let mut v1 = BytesMut::new();
        v1.put_slice(b"VFAI\x01");
        v1.put_u8(v2[5]); // kind
        v1.put_slice(&v2[7..]); // body, minus the v2 flags byte
        let old = HnswIndex::from_bytes(v1.freeze()).unwrap();
        let q = e.embed("championship season");
        assert_eq!(old.search(&q, 4), hnsw.search(&q, 4));
    }

    #[test]
    fn v2_snapshots_migrate_to_equivalent_indexes() {
        // The legacy encoders emit the exact v2 wire format; loading them
        // must produce indexes that answer identically to the live ones
        // (generation resets to 0 — v2 carries none).
        let e = TextEmbedder::with_seed(11);
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        let flat2 = FlatIndex::from_bytes(flat.to_bytes_v2()).unwrap();
        let hnsw2 = HnswIndex::from_bytes(hnsw.to_bytes_v2()).unwrap();
        assert_eq!(flat2.generation(), 0);
        assert_eq!(hnsw2.generation(), 0);
        for q in ["jordan basketball", "election district new york"] {
            let qv = e.embed(q);
            assert_eq!(flat.search(&qv, 4), flat2.search(&qv, 4), "flat {q}");
            assert_eq!(hnsw.search(&qv, 4), hnsw2.search(&qv, 4), "hnsw {q}");
        }
    }

    #[test]
    fn v3_load_is_zero_copy_and_keeps_state() {
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        flat.remove(tid(3));
        hnsw.remove(tid(3));
        let gen_f = flat.generation();
        let gen_h = hnsw.generation();
        let flat2 = FlatIndex::from_bytes(flat.to_bytes()).unwrap();
        let hnsw2 = HnswIndex::from_bytes(hnsw.to_bytes()).unwrap();
        assert_eq!(flat2.generation(), gen_f);
        assert_eq!(hnsw2.generation(), gen_h);
        assert_eq!(flat2.tombstones(), 1);
        assert_eq!(hnsw2.tombstones(), 1);
        assert_eq!(flat2.len(), flat.len());
        assert_eq!(hnsw2.len(), hnsw.len());
        // Every reloaded vector borrows the shared slab — the zero-copy path.
        assert!(flat2.vectors.iter().all(|v| v.is_shared()));
        assert!(hnsw2.nodes.iter().all(|n| n.vector.is_shared()));
        // And the tombstone survives the round-trip.
        let e = TextEmbedder::with_seed(11);
        let q = e.embed("dance drama film stomp the yard 2007");
        assert!(flat2.search(&q, 8).iter().all(|h| h.id != tid(3)));
        assert!(hnsw2.search(&q, 8).iter().all(|h| h.id != tid(3)));
    }

    #[test]
    fn flat_tombstones_skip_and_compact() {
        let e = TextEmbedder::with_seed(11);
        let mut idx = FlatIndex::new();
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        assert_eq!(idx.len(), 8);
        assert!(idx.remove(tid(2)));
        assert!(!idx.remove(tid(2)), "double remove is a no-op");
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.tombstones(), 1);
        let hits = idx.search(&e.embed("basketball jordan bulls"), 8);
        assert_eq!(hits.len(), 7);
        assert!(hits.iter().all(|h| h.id != tid(2)));
        // Removing past the half-dead threshold triggers compaction.
        for i in [0u64, 1, 3, 4] {
            idx.remove(tid(i));
        }
        assert_eq!(idx.tombstones(), 0, "compaction sheds tombstones");
        assert!(idx.compactions() >= 1);
        assert_eq!(idx.len(), 3);
        let hits = idx.search(&e.embed("chicago bulls championship"), 8);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn hnsw_tombstones_overfetch_honors_k() {
        // Delete half the corpus; searches for k=4 must still fill from the
        // live half and never surface a tombstoned id.
        let e = TextEmbedder::with_seed(3);
        let mut idx = HnswIndex::with_defaults();
        for i in 0..40u64 {
            idx.add(tid(i), e.embed(&format!("entity {} topic {}", i, i % 5)));
        }
        for i in 0..20u64 {
            assert!(idx.remove(tid(i)));
        }
        assert_eq!(idx.len(), 20);
        assert_eq!(idx.tombstones(), 20);
        let hits = idx.search(&e.embed("entity 25 topic 0"), 4);
        assert_eq!(hits.len(), 4, "over-fetch must fill k past tombstones");
        assert!(hits.iter().all(|h| h.id >= tid(20)));
        // Compaction rebuilds from the live nodes and keeps answering.
        idx.compact();
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.compactions(), 1);
        assert_eq!(idx.len(), 20);
        let hits2 = idx.search(&e.embed("entity 25 topic 0"), 4);
        assert_eq!(hits2.len(), 4);
        assert!(hits2.iter().all(|h| h.id >= tid(20)));
    }

    #[test]
    fn any_vector_index_dispatches_and_roundtrips() {
        let e = TextEmbedder::with_seed(11);
        let mut any = AnyVectorIndex::Hnsw(HnswIndex::with_defaults());
        for (id, v) in corpus() {
            any.add(id, v);
        }
        assert_eq!(any.backend_name(), "hnsw");
        assert!(any.remove(tid(1)));
        assert_eq!(any.tombstones(), 1);
        let back = AnyVectorIndex::from_bytes(any.to_bytes()).unwrap();
        assert_eq!(back.backend_name(), "hnsw");
        assert_eq!(back.len(), any.len());
        let qv = e.embed("election district");
        assert_eq!(any.search(&qv, 3), back.search(&qv, 3));
        // Kind dispatch picks flat for flat snapshots.
        let mut flat = FlatIndex::new();
        flat.add(tid(0), e.embed("alpha"));
        let f = AnyVectorIndex::from_bytes(flat.to_bytes()).unwrap();
        assert_eq!(f.backend_name(), "flat");
        // And rejects a non-vector snapshot kind outright.
        let mut bogus = flat.to_bytes().to_vec();
        bogus[5] = SnapshotKind::Inverted as u8;
        assert!(AnyVectorIndex::from_bytes(Bytes::from(bogus)).is_err());
    }

    #[test]
    fn truncated_v3_snapshots_rejected_not_garbled() {
        // Chop a valid v3 snapshot at every prefix length; the decoder must
        // return a typed error every time, never panic or succeed.
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        flat.remove(tid(0));
        hnsw.remove(tid(0));
        let fb = flat.to_bytes();
        let hb = hnsw.to_bytes();
        for cut in 0..fb.len() {
            assert!(
                FlatIndex::from_bytes(fb.slice(0..cut)).is_err(),
                "flat prefix of {cut} bytes must not decode"
            );
        }
        for cut in (0..hb.len()).step_by(7) {
            assert!(
                HnswIndex::from_bytes(hb.slice(0..cut)).is_err(),
                "hnsw prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn unknown_snapshot_flags_rejected_not_misscored() {
        let mut flat = FlatIndex::new();
        flat.add(tid(0), Vector::from_vec(vec![1.0, 0.0]));
        let good = flat.to_bytes();
        let mut bad = good.to_vec();
        bad[6] |= 0x40; // a flag bit this decoder does not understand
        assert_eq!(
            FlatIndex::from_bytes(Bytes::from(bad.clone())).unwrap_err(),
            PersistError::BadFlags(FLAG_UNIT_NORM | FLAG_QUANT_CODES | 0x40)
        );
        bad[5] = SnapshotKind::Hnsw as u8;
        assert_eq!(
            HnswIndex::from_bytes(Bytes::from(bad)).unwrap_err(),
            PersistError::BadFlags(FLAG_UNIT_NORM | FLAG_QUANT_CODES | 0x40)
        );
    }

    #[test]
    fn full_rescore_is_identical_to_exact_scan() {
        // rescore_factor = ∞ keeps every candidate in phase 1 and rescores
        // all of them with the exact kernel: byte-identical to exact mode.
        let mut exact = FlatIndex::new();
        let mut quant = FlatIndex::new_quantized(usize::MAX);
        for (id, v) in corpus() {
            exact.add(id, v.clone());
            quant.add(id, v);
        }
        let e = TextEmbedder::with_seed(11);
        for q in ["jordan basketball", "election district", "film actress"] {
            let qv = e.embed(q);
            for k in [1usize, 3, 8] {
                assert_eq!(exact.search(&qv, k), quant.search(&qv, k), "{q} k={k}");
            }
        }
    }

    #[test]
    fn quantized_scan_skips_tombstones_and_survives_compaction() {
        let e = TextEmbedder::with_seed(11);
        let mut idx = FlatIndex::new_quantized(4);
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        assert!(idx.remove(tid(2)));
        let hits = idx.search(&e.embed("basketball jordan bulls"), 8);
        assert_eq!(hits.len(), 7);
        assert!(hits.iter().all(|h| h.id != tid(2)));
        // Force a compaction; the code sidecar must be rebuilt in step.
        for i in [0u64, 1, 3, 4] {
            idx.remove(tid(i));
        }
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.codes.len(), idx.ids.len() * idx.dim);
        assert_eq!(idx.scales.len(), idx.ids.len());
        let hits = idx.search(&e.embed("chicago bulls championship"), 8);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn v4_snapshot_carries_codes_and_scan_mode() {
        let mut idx = FlatIndex::new_quantized(7);
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        idx.remove(tid(3));
        let back = FlatIndex::from_bytes(idx.to_bytes()).unwrap();
        assert!(back.is_quantized());
        assert_eq!(back.rescore_factor(), 7);
        assert_eq!(back.codes, idx.codes);
        assert_eq!(back.scales, idx.scales);
        assert_eq!(back.dim, idx.dim);
        let e = TextEmbedder::with_seed(11);
        for q in ["jordan basketball", "election district new york"] {
            let qv = e.embed(q);
            assert_eq!(idx.search(&qv, 4), back.search(&qv, 4), "{q}");
        }
    }

    #[test]
    fn v3_snapshot_migrates_by_requantizing() {
        // A v3 snapshot predates the code sidecar: loading one must
        // re-quantize to codes bit-identical to the eager writer's
        // (quantization is pure), defaulting to the exact scan mode.
        let mut idx = FlatIndex::new();
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        idx.remove(tid(1));
        let gen = idx.generation();
        let back = FlatIndex::from_bytes(idx.to_bytes_v3()).unwrap();
        assert!(!back.is_quantized());
        assert_eq!(back.generation(), gen);
        assert_eq!(back.tombstones(), 1);
        assert_eq!(back.codes, idx.codes);
        assert_eq!(back.scales, idx.scales);
    }

    #[test]
    fn batch_search_matches_per_query_search() {
        // The blocked multi-query scan must return exactly what B
        // independent searches return — exact mode, quantized mode, and
        // through the backend-erased dispatch.
        let e = TextEmbedder::with_seed(11);
        let queries: Vec<Vector> = [
            "jordan basketball points",
            "election district new york",
            "film actress roles",
            "championship season",
            "track and field",
        ]
        .iter()
        .map(|q| e.embed(q))
        .collect();
        let mut exact = FlatIndex::new();
        let mut quant = FlatIndex::new_quantized(3);
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            exact.add(id, v.clone());
            quant.add(id, v.clone());
            hnsw.add(id, v);
        }
        exact.remove(tid(5));
        quant.remove(tid(5));
        for k in [1usize, 3, 8] {
            let want_e: Vec<_> = queries.iter().map(|q| exact.search(q, k)).collect();
            assert_eq!(exact.search_batch(&queries, k), want_e, "exact k={k}");
            let want_q: Vec<_> = queries.iter().map(|q| quant.search(q, k)).collect();
            assert_eq!(quant.search_batch(&queries, k), want_q, "quant k={k}");
            let want_h: Vec<_> = queries.iter().map(|q| hnsw.search(q, k)).collect();
            assert_eq!(hnsw.search_batch(&queries, k), want_h, "hnsw k={k}");
        }
        let any = AnyVectorIndex::Flat(quant);
        let want: Vec<_> = queries.iter().map(|q| any.search(q, 4)).collect();
        assert_eq!(any.search_batch(&queries, 4), want);
        // Degenerate shapes.
        assert!(exact.search_batch(&[], 3).is_empty());
        assert_eq!(exact.search_batch(&queries, 0), vec![Vec::new(); 5]);
    }

    #[test]
    fn visited_pool_reuse_is_stable_across_searches() {
        // Repeated searches reuse the pooled epoch-stamped buffer; results
        // must not drift between the cold (allocating) first search and
        // warm reuse, including interleaved mutations.
        let e = TextEmbedder::with_seed(3);
        let mut idx = HnswIndex::with_defaults();
        for i in 0..60u64 {
            idx.add(tid(i), e.embed(&format!("entity {} topic {}", i, i % 5)));
        }
        let q = e.embed("entity 31 topic 1");
        let first = idx.search(&q, 5);
        for _ in 0..50 {
            assert_eq!(idx.search(&q, 5), first);
        }
        idx.add(tid(1000), e.embed("entity 31 topic 1 duplicate"));
        let after = idx.search(&q, 5);
        assert_eq!(after.len(), 5);
        assert_eq!(idx.search(&q, 5), after);
    }

    #[test]
    fn trait_object_usable() {
        let mut indexes: Vec<Box<dyn VectorIndex>> = vec![
            Box::new(FlatIndex::new()),
            Box::new(HnswIndex::with_defaults()),
        ];
        let e = TextEmbedder::with_seed(11);
        for idx in &mut indexes {
            idx.add(tid(0), e.embed("shared content"));
            assert_eq!(idx.len(), 1);
            assert!(!idx.is_empty());
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random raw vector (the index normalizes).
    fn random_vector(seed: u64, row: u64, dim: usize) -> Vector {
        let v: Vec<f32> = (0..dim)
            .map(|i| {
                let h = verifai_embed::hashing::splitmix64(seed ^ (row << 20) ^ (i as u64) << 4);
                (verifai_embed::hashing::unit_float(h) * 2.0 - 1.0) as f32
            })
            .collect();
        Vector::from_vec(v)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite contract: the quantized two-phase scan at the default
        /// rescore factor achieves recall@10 ≥ 0.95 against the exact flat
        /// scan, across random corpora and dimensions.
        #[test]
        fn quantized_rescore_recall_at_10(
            dim in 8usize..160,
            n in 40usize..160,
            seed in 0u64..200,
        ) {
            let mut exact = FlatIndex::new();
            let mut quant = FlatIndex::new_quantized(DEFAULT_RESCORE_FACTOR);
            for row in 0..n as u64 {
                let v = random_vector(seed, row, dim);
                exact.add(InstanceId::Text(row), v.clone());
                quant.add(InstanceId::Text(row), v);
            }
            let k = 10usize.min(n);
            let mut hit = 0usize;
            let mut total = 0usize;
            for qi in 0..8u64 {
                let q = random_vector(seed ^ 0xdead, qi, dim);
                let truth: std::collections::HashSet<InstanceId> =
                    exact.search(&q, k).into_iter().map(|h| h.id).collect();
                for h in quant.search(&q, k) {
                    total += 1;
                    hit += truth.contains(&h.id) as usize;
                }
            }
            let recall = hit as f64 / total as f64;
            prop_assert!(
                recall >= 0.95,
                "dim {} n {} seed {}: recall@{} = {}", dim, n, seed, k, recall
            );
        }

        /// rescore_factor = ∞ (full rescore) is byte-identical to exact.
        #[test]
        fn full_rescore_identity(
            dim in 4usize..96,
            n in 10usize..120,
            seed in 0u64..200,
        ) {
            let mut exact = FlatIndex::new();
            let mut quant = FlatIndex::new_quantized(usize::MAX);
            for row in 0..n as u64 {
                let v = random_vector(seed, row, dim);
                exact.add(InstanceId::Text(row), v.clone());
                quant.add(InstanceId::Text(row), v);
            }
            for qi in 0..4u64 {
                let q = random_vector(seed ^ 0xbeef, qi, dim);
                for k in [1usize, 5, 10] {
                    prop_assert_eq!(exact.search(&q, k), quant.search(&q, k));
                }
            }
        }
    }
}
