//! Semantic (vector) indexes: exact flat scan and HNSW approximate search.
//!
//! These are the Faiss / pgvector substitutes. Both index embedding vectors
//! under [`InstanceId`]s and return cosine-similarity-ranked hits.
//! [`FlatIndex`] is exact (and the recall reference); [`HnswIndex`] is the
//! approximate graph index real deployments use at the paper's corpus scale.
//!
//! ## The unit-norm invariant
//!
//! Both indexes **normalize every vector on `add`** (and on snapshot load,
//! when the snapshot does not already carry the
//! [`persist::FLAG_UNIT_NORM`] guarantee). With every stored vector unit,
//! cosine similarity degenerates to a single fused dot product
//! ([`Vector::dot_unit`]) — one pass over the data instead of the three a
//! raw `cosine` costs — for the flat scan and for every distance evaluated
//! during HNSW construction and search. Queries are normalized once at the
//! search (or insert) entry point. Scores are unchanged up to float
//! normalization error (≤ ~1e-6 for the already-unit embedder outputs).

use crate::hit::{sort_hits, SearchHit};
use crate::persist::{self, PersistError, SnapshotKind, FLAG_UNIT_NORM};
use bytes::{BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use verifai_embed::Vector;
use verifai_lake::InstanceId;

/// A unit-length copy of `query` (zero stays zero): the one normalization
/// a search pays, after which every candidate comparison is a single dot.
fn unit_query(query: &Vector) -> Vector {
    let mut q = query.clone();
    q.normalize();
    q
}

/// Common interface of the semantic indexes.
pub trait VectorIndex {
    /// Insert a vector under an id.
    fn add(&mut self, id: InstanceId, vector: Vector);
    /// Top-k most similar entries (cosine).
    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit>;
    /// Number of indexed vectors.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Flat (exact) index
// ---------------------------------------------------------------------------

/// Exact nearest-neighbour index: brute-force cosine scan with a top-k heap.
#[derive(Debug, Default)]
pub struct FlatIndex {
    ids: Vec<InstanceId>,
    vectors: Vec<Vector>,
}

impl FlatIndex {
    /// Empty index.
    pub fn new() -> FlatIndex {
        FlatIndex::default()
    }
}

struct MinEntry {
    score: f64,
    ord: usize,
    id: InstanceId,
}
impl PartialEq for MinEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.ord == other.ord
    }
}
impl Eq for MinEntry {}
impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Evict smallest score first; among score ties, the largest
        // external id — the same total order `sort_hits` uses, so the k
        // survivors at a tied boundary match a whole-corpus scan's and
        // sharded top-k merge stays exact. The insertion ordinal breaks
        // the remaining (score, id) duplicates deterministically.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
            .then_with(|| self.ord.cmp(&other.ord))
    }
}

impl FlatIndex {
    /// Serialize the index into a versioned binary snapshot.
    pub fn to_bytes(&self) -> Bytes {
        // Each entry is a 9-byte id plus a length-prefixed vector; sizing by
        // the real payload (not just the ids) makes the encode allocation-free
        // after this reserve.
        let dim = self.vectors.first().map(|v| v.dim()).unwrap_or(0);
        let mut buf = BytesMut::with_capacity(16 + self.ids.len() * (13 + dim * 4));
        persist::put_header(&mut buf, SnapshotKind::Flat, FLAG_UNIT_NORM);
        buf.put_u32_le(self.ids.len() as u32);
        for (id, v) in self.ids.iter().zip(self.vectors.iter()) {
            persist::put_instance_id(&mut buf, *id);
            put_vector(&mut buf, v);
        }
        buf.freeze()
    }

    /// Reconstruct an index from a snapshot produced by [`Self::to_bytes`].
    ///
    /// Version-1 snapshots (and any snapshot without
    /// [`persist::FLAG_UNIT_NORM`]) predate the unit-norm invariant; their
    /// vectors are migrated by normalizing on load, never silently mis-scored.
    pub fn from_bytes(mut buf: Bytes) -> Result<FlatIndex, PersistError> {
        let flags = persist::check_header(&mut buf, SnapshotKind::Flat)?;
        let n = persist::get_u32(&mut buf)? as usize;
        let mut ids = Vec::with_capacity(n);
        let mut vectors = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(persist::get_instance_id(&mut buf)?);
            let mut v = get_vector(&mut buf)?;
            if flags & FLAG_UNIT_NORM == 0 {
                v.normalize();
            }
            vectors.push(v);
        }
        Ok(FlatIndex { ids, vectors })
    }
}

/// Encode a vector as `u32 dim + f32 components`.
fn put_vector(buf: &mut BytesMut, v: &Vector) {
    buf.put_u32_le(v.dim() as u32);
    for &x in v.as_slice() {
        buf.put_f32_le(x);
    }
}

/// Decode a vector.
fn get_vector(buf: &mut Bytes) -> Result<Vector, PersistError> {
    let dim = persist::get_u32(buf)? as usize;
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        v.push(persist::get_f32(buf)?);
    }
    Ok(Vector::from_vec(v))
}

impl VectorIndex for FlatIndex {
    fn add(&mut self, id: InstanceId, mut vector: Vector) {
        vector.normalize();
        self.ids.push(id);
        self.vectors.push(vector);
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        let q = unit_query(query);
        let mut heap: BinaryHeap<MinEntry> = BinaryHeap::with_capacity(k + 1);
        for (ord, v) in self.vectors.iter().enumerate() {
            let score = v.dot_unit(&q) as f64;
            heap.push(MinEntry {
                score,
                ord,
                id: self.ids[ord],
            });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit::new(self.ids[e.ord], e.score))
            .collect();
        sort_hits(&mut hits);
        hits
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

// ---------------------------------------------------------------------------
// HNSW (approximate) index
// ---------------------------------------------------------------------------

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers > 0 (layer 0 uses `2 * m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during search.
    pub ef_search: usize,
    /// Seed for the (deterministic) level generator.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x9e37,
        }
    }
}

/// One directed HNSW edge with the endpoint distance cached at creation
/// time. Stored vectors are immutable (and unit), so the cache is exact:
/// `connect`'s back-link prune sorts on it instead of cloning the node's
/// vector and re-scoring every neighbour. Snapshots store only the ordinal;
/// distances are re-derived on load.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbor {
    ord: u32,
    dist: f64,
}

#[derive(Debug)]
struct HnswNode {
    id: InstanceId,
    vector: Vector,
    /// Adjacency per layer; `neighbors[l]` exists for l <= node level.
    neighbors: Vec<Vec<Neighbor>>,
}

/// Hierarchical Navigable Small World graph over cosine similarity.
#[derive(Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    nodes: Vec<HnswNode>,
    entry: Option<u32>,
    max_level: usize,
}

impl HnswIndex {
    /// Empty index with the given parameters.
    pub fn new(config: HnswConfig) -> HnswIndex {
        HnswIndex {
            config,
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
        }
    }

    /// Empty index with default parameters.
    pub fn with_defaults() -> HnswIndex {
        HnswIndex::new(HnswConfig::default())
    }

    /// Cosine *distance* (1 - similarity): lower is closer. A single fused
    /// dot — both operands are unit by the index invariant (`q` must be
    /// pre-normalized by the caller, which `add`/`search` guarantee).
    fn dist(&self, a: u32, q: &Vector) -> f64 {
        1.0 - self.nodes[a as usize].vector.dot_unit(q) as f64
    }

    /// Deterministic geometric level for the `ord`-th insertion.
    fn draw_level(&self, ord: usize) -> usize {
        // P(level >= l) = (1/m)^l, derived from a hash of (seed, ord).
        let mut h = verifai_embed::hashing::splitmix64(self.config.seed ^ (ord as u64) << 1);
        let mut level = 0usize;
        let threshold = u64::MAX / self.config.m.max(2) as u64;
        while h < threshold && level < 16 {
            level += 1;
            h = verifai_embed::hashing::splitmix64(h);
        }
        level
    }

    /// Greedy descent from the entry point to the closest node at `layer`.
    fn greedy_at_layer(&self, start: u32, q: &Vector, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = self.dist(cur, q);
        loop {
            let mut improved = false;
            for e in &self.nodes[cur as usize].neighbors[layer] {
                let d = self.dist(e.ord, q);
                if d < cur_d {
                    cur = e.ord;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first search at one layer, returning up to `ef` closest candidates
    /// as (distance, ordinal) sorted ascending by distance.
    fn search_layer(&self, entry: u32, q: &Vector, layer: usize, ef: usize) -> Vec<(f64, u32)> {
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(entry);
        let d0 = self.dist(entry, q);
        // Candidates: min-dist first (use Reverse ordering via negated compare).
        let mut candidates: BinaryHeap<CandEntry> = BinaryHeap::new();
        candidates.push(CandEntry {
            dist: d0,
            ord: entry,
            min_first: true,
        });
        // Results: max-dist first so the worst can be evicted.
        let mut results: BinaryHeap<CandEntry> = BinaryHeap::new();
        results.push(CandEntry {
            dist: d0,
            ord: entry,
            min_first: false,
        });

        while let Some(c) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f64::INFINITY);
            if c.dist > worst && results.len() >= ef {
                break;
            }
            for e in &self.nodes[c.ord as usize].neighbors[layer] {
                if !visited.insert(e.ord) {
                    continue;
                }
                let d = self.dist(e.ord, q);
                let worst = results.peek().map(|r| r.dist).unwrap_or(f64::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(CandEntry {
                        dist: d,
                        ord: e.ord,
                        min_first: true,
                    });
                    results.push(CandEntry {
                        dist: d,
                        ord: e.ord,
                        min_first: false,
                    });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f64, u32)> = results.into_iter().map(|e| (e.dist, e.ord)).collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        out
    }

    /// Connect `node` to the closest `max_conn` of `candidates` at `layer`,
    /// and back-link with pruning.
    ///
    /// The `search_layer` distances ride along into the edge cache, and the
    /// back-link reuses them (the fused dot is symmetric), so pruning a
    /// neighbour's over-full list is a sort over cached values: no vector
    /// clone, no re-scoring of edges that were already scored when created.
    fn connect(&mut self, node: u32, candidates: &[(f64, u32)], layer: usize, max_conn: usize) {
        let selected: Vec<Neighbor> = candidates
            .iter()
            .take(max_conn)
            .filter(|&&(_, o)| o != node)
            .map(|&(dist, ord)| Neighbor { ord, dist })
            .collect();
        self.nodes[node as usize].neighbors[layer] = selected.clone();
        for e in &selected {
            let nv = &mut self.nodes[e.ord as usize].neighbors[layer];
            if nv.iter().any(|x| x.ord == node) {
                continue;
            }
            nv.push(Neighbor {
                ord: node,
                dist: e.dist,
            });
            if nv.len() > max_conn {
                // Prune: keep the max_conn closest neighbours of e.ord.
                nv.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap_or(Ordering::Equal));
                nv.truncate(max_conn);
            }
        }
    }
}

struct CandEntry {
    dist: f64,
    ord: u32,
    /// true = min-heap behaviour (closest first), false = max-heap (farthest first).
    min_first: bool,
}
impl PartialEq for CandEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.ord == other.ord
    }
}
impl Eq for CandEntry {}
impl PartialOrd for CandEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CandEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        let ord = self
            .dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.ord.cmp(&other.ord));
        if self.min_first {
            ord.reverse()
        } else {
            ord
        }
    }
}

impl HnswIndex {
    /// Serialize the graph into a versioned binary snapshot. Reloading is
    /// orders of magnitude faster than re-inserting at lake scale. Edge
    /// distances are not serialized — they are a cache, re-derived on load.
    pub fn to_bytes(&self) -> Bytes {
        // Exact payload size: 9-byte id + length-prefixed vector + per-layer
        // length-prefixed ordinal lists for every node.
        let payload: usize = self
            .nodes
            .iter()
            .map(|n| {
                17 + n.vector.dim() * 4 + n.neighbors.iter().map(|l| 4 + 4 * l.len()).sum::<usize>()
            })
            .sum();
        let mut buf = BytesMut::with_capacity(48 + payload);
        persist::put_header(&mut buf, SnapshotKind::Hnsw, FLAG_UNIT_NORM);
        buf.put_u32_le(self.config.m as u32);
        buf.put_u32_le(self.config.ef_construction as u32);
        buf.put_u32_le(self.config.ef_search as u32);
        buf.put_u64_le(self.config.seed);
        buf.put_u32_le(self.max_level as u32);
        match self.entry {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u32_le(e);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(self.nodes.len() as u32);
        for node in &self.nodes {
            persist::put_instance_id(&mut buf, node.id);
            put_vector(&mut buf, &node.vector);
            buf.put_u32_le(node.neighbors.len() as u32);
            for layer in &node.neighbors {
                buf.put_u32_le(layer.len() as u32);
                for e in layer {
                    buf.put_u32_le(e.ord);
                }
            }
        }
        buf.freeze()
    }

    /// Reconstruct the graph from a snapshot produced by [`Self::to_bytes`].
    ///
    /// Version-1 snapshots (no [`persist::FLAG_UNIT_NORM`]) are migrated by
    /// normalizing every vector on load; edge distances are then re-derived
    /// from the (unit) vectors either way.
    pub fn from_bytes(mut buf: Bytes) -> Result<HnswIndex, PersistError> {
        let flags = persist::check_header(&mut buf, SnapshotKind::Hnsw)?;
        let m = persist::get_u32(&mut buf)? as usize;
        let ef_construction = persist::get_u32(&mut buf)? as usize;
        let ef_search = persist::get_u32(&mut buf)? as usize;
        let seed = persist::get_u64(&mut buf)?;
        let max_level = persist::get_u32(&mut buf)? as usize;
        let entry = match persist::get_u8(&mut buf)? {
            0 => None,
            1 => Some(persist::get_u32(&mut buf)?),
            other => return Err(PersistError::BadTag(other)),
        };
        let n = persist::get_u32(&mut buf)? as usize;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let id = persist::get_instance_id(&mut buf)?;
            let mut vector = get_vector(&mut buf)?;
            if flags & FLAG_UNIT_NORM == 0 {
                vector.normalize();
            }
            let n_layers = persist::get_u32(&mut buf)? as usize;
            let mut neighbors = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let len = persist::get_u32(&mut buf)? as usize;
                let mut layer = Vec::with_capacity(len);
                for _ in 0..len {
                    let ord = persist::get_u32(&mut buf)?;
                    if ord as usize >= n {
                        return Err(PersistError::BadTag(ord as u8));
                    }
                    layer.push(Neighbor { ord, dist: 0.0 });
                }
                neighbors.push(layer);
            }
            nodes.push(HnswNode {
                id,
                vector,
                neighbors,
            });
        }
        // Re-derive the cached edge distances from the (now unit) vectors.
        #[allow(clippy::needless_range_loop)]
        for i in 0..nodes.len() {
            for l in 0..nodes[i].neighbors.len() {
                for j in 0..nodes[i].neighbors[l].len() {
                    let o = nodes[i].neighbors[l][j].ord as usize;
                    let d = 1.0 - nodes[i].vector.dot_unit(&nodes[o].vector) as f64;
                    nodes[i].neighbors[l][j].dist = d;
                }
            }
        }
        Ok(HnswIndex {
            config: HnswConfig {
                m,
                ef_construction,
                ef_search,
                seed,
            },
            nodes,
            entry,
            max_level,
        })
    }
}

impl VectorIndex for HnswIndex {
    fn add(&mut self, id: InstanceId, mut vector: Vector) {
        vector.normalize();
        let ord = self.nodes.len() as u32;
        let level = self.draw_level(ord as usize);
        self.nodes.push(HnswNode {
            id,
            vector,
            neighbors: vec![Vec::new(); level + 1],
        });
        // Already unit: every `dist` during construction is a single dot.
        let q = self.nodes[ord as usize].vector.clone();

        let Some(mut entry) = self.entry else {
            self.entry = Some(ord);
            self.max_level = level;
            return;
        };

        // Descend from the top layer to level+1 greedily.
        for l in ((level + 1)..=self.max_level).rev() {
            entry = self.greedy_at_layer(entry, &q, l);
        }
        // Insert at each layer from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(entry, &q, l, self.config.ef_construction);
            let max_conn = if l == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            self.connect(ord, &found, l, max_conn);
            if let Some(&(_, best)) = found.first() {
                entry = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(ord);
        }
    }

    fn search(&self, query: &Vector, k: usize) -> Vec<SearchHit> {
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let q = unit_query(query);
        for l in (1..=self.max_level).rev() {
            entry = self.greedy_at_layer(entry, &q, l);
        }
        let ef = self.config.ef_search.max(k);
        let found = self.search_layer(entry, &q, 0, ef);
        let mut hits: Vec<SearchHit> = found
            .into_iter()
            .take(k)
            .map(|(d, o)| SearchHit::new(self.nodes[o as usize].id, 1.0 - d))
            .collect();
        sort_hits(&mut hits);
        hits
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_embed::TextEmbedder;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Text(i)
    }

    fn corpus() -> Vec<(InstanceId, Vector)> {
        let e = TextEmbedder::with_seed(11);
        let texts = [
            "united states house election new york district",
            "house election results new york representatives",
            "basketball career points michael jordan bulls",
            "dance drama film stomp the yard 2007",
            "track and field championship 1959 ncaa",
            "actress meagan good film roles",
            "governor election ohio incumbent",
            "chicago bulls championship 1997 season",
        ];
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (tid(i as u64), e.embed(t)))
            .collect()
    }

    #[test]
    fn flat_finds_semantic_neighbour() {
        let mut idx = FlatIndex::new();
        for (id, v) in corpus() {
            idx.add(id, v);
        }
        let e = TextEmbedder::with_seed(11);
        let hits = idx.search(&e.embed("new york house election"), 2);
        assert!(hits[0].id == tid(0) || hits[0].id == tid(1));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn flat_k_zero_and_empty() {
        let idx = FlatIndex::new();
        let e = TextEmbedder::with_seed(11);
        assert!(idx.search(&e.embed("x"), 3).is_empty());
        let mut idx = FlatIndex::new();
        idx.add(tid(0), e.embed("abc"));
        assert!(idx.search(&e.embed("abc"), 0).is_empty());
    }

    #[test]
    fn hnsw_matches_flat_on_small_corpus() {
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        let e = TextEmbedder::with_seed(11);
        for q in [
            "jordan basketball points",
            "film actress",
            "election district",
        ] {
            let qv = e.embed(q);
            let f = flat.search(&qv, 3);
            let h = hnsw.search(&qv, 3);
            assert_eq!(f[0].id, h[0].id, "query '{q}' disagrees at rank 1");
        }
    }

    #[test]
    fn hnsw_recall_at_10_on_larger_corpus() {
        // 300 synthetic points; HNSW must achieve high recall@10 vs flat.
        let e = TextEmbedder::with_seed(3);
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::new(HnswConfig {
            ef_search: 80,
            ..HnswConfig::default()
        });
        for i in 0..300u64 {
            let text = format!("entity {} topic {} attribute {}", i, i % 17, i % 7);
            let v = e.embed(&text);
            flat.add(tid(i), v.clone());
            hnsw.add(tid(i), v);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..20u64 {
            let qv = e.embed(&format!(
                "entity {} topic {}",
                q * 13 % 300,
                (q * 13 % 300) % 17
            ));
            let truth: HashSet<InstanceId> =
                flat.search(&qv, 10).into_iter().map(|h| h.id).collect();
            for h in hnsw.search(&qv, 10) {
                total += 1;
                if truth.contains(&h.id) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.8, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn hnsw_deterministic() {
        let build = || {
            let mut h = HnswIndex::with_defaults();
            for (id, v) in corpus() {
                h.add(id, v);
            }
            h
        };
        let e = TextEmbedder::with_seed(11);
        let q = e.embed("championship season");
        assert_eq!(build().search(&q, 4), build().search(&q, 4));
    }

    #[test]
    fn hnsw_single_element() {
        let mut h = HnswIndex::with_defaults();
        let e = TextEmbedder::with_seed(11);
        h.add(tid(9), e.embed("lonely document"));
        let hits = h.search(&e.embed("lonely"), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, tid(9));
    }

    #[test]
    fn snapshots_roundtrip_both_vector_indexes() {
        let e = TextEmbedder::with_seed(11);
        let mut flat = FlatIndex::new();
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            flat.add(id, v.clone());
            hnsw.add(id, v);
        }
        let flat2 = FlatIndex::from_bytes(flat.to_bytes()).unwrap();
        let hnsw2 = HnswIndex::from_bytes(hnsw.to_bytes()).unwrap();
        for q in [
            "jordan basketball",
            "election district new york",
            "film actress",
        ] {
            let qv = e.embed(q);
            assert_eq!(flat.search(&qv, 4), flat2.search(&qv, 4), "flat query {q}");
            assert_eq!(hnsw.search(&qv, 4), hnsw2.search(&qv, 4), "hnsw query {q}");
        }
        // A restored graph keeps growing correctly.
        let mut hnsw3 = HnswIndex::from_bytes(hnsw.to_bytes()).unwrap();
        hnsw3.add(tid(99), e.embed("brand new document about elections"));
        assert_eq!(hnsw3.len(), hnsw.len() + 1);
        let hits = hnsw3.search(&e.embed("brand new document"), 1);
        assert_eq!(hits[0].id, tid(99));
    }

    #[test]
    fn snapshot_garbage_rejected() {
        assert!(FlatIndex::from_bytes(bytes::Bytes::from_static(b"nah")).is_err());
        assert!(HnswIndex::from_bytes(bytes::Bytes::from_static(b"VFAI\x01\x02")).is_err());
    }

    #[test]
    fn add_normalizes_to_unit_invariant() {
        // A vector and its scaled copy index identically: `add` owns the
        // unit-norm invariant, so scores are cosines, not raw dots.
        let mut a = FlatIndex::new();
        let mut b = FlatIndex::new();
        a.add(tid(0), Vector::from_vec(vec![3.0, 4.0, 0.0]));
        b.add(tid(0), Vector::from_vec(vec![30.0, 40.0, 0.0]));
        let q = Vector::from_vec(vec![1.0, 1.0, 0.0]);
        let ha = a.search(&q, 1);
        let hb = b.search(&q, 1);
        assert_eq!(ha, hb);
        let expect = Vector::from_vec(vec![3.0, 4.0, 0.0]).cosine(&q) as f64;
        assert!((ha[0].score - expect).abs() < 1e-6);
    }

    #[test]
    fn v1_flat_snapshot_migrates_by_normalizing() {
        // Hand-encode a version-1 Flat snapshot (no flags byte) holding a
        // deliberately non-unit vector, as the pre-invariant encoder could.
        let mut buf = BytesMut::new();
        buf.put_slice(b"VFAI\x01");
        buf.put_u8(SnapshotKind::Flat as u8);
        buf.put_u32_le(1);
        persist::put_instance_id(&mut buf, tid(7));
        put_vector(&mut buf, &Vector::from_vec(vec![3.0, 4.0]));
        let idx = FlatIndex::from_bytes(buf.freeze()).unwrap();
        let hits = idx.search(&Vector::from_vec(vec![1.0, 0.0]), 1);
        assert_eq!(hits[0].id, tid(7));
        // cosine([3,4],[1,0]) = 0.6; an unmigrated raw dot would score 3.0.
        assert!(
            (hits[0].score - 0.6).abs() < 1e-6,
            "migrated vector must be normalized, got score {}",
            hits[0].score
        );
    }

    #[test]
    fn v1_hnsw_snapshot_migrates_by_normalizing() {
        // Minimal version-1 graph: one level-0 node with a non-unit vector.
        let mut buf = BytesMut::new();
        buf.put_slice(b"VFAI\x01");
        buf.put_u8(SnapshotKind::Hnsw as u8);
        buf.put_u32_le(16); // m
        buf.put_u32_le(100); // ef_construction
        buf.put_u32_le(64); // ef_search
        buf.put_u64_le(0x9e37); // seed
        buf.put_u32_le(0); // max_level
        buf.put_u8(1);
        buf.put_u32_le(0); // entry = node 0
        buf.put_u32_le(1); // node count
        persist::put_instance_id(&mut buf, tid(5));
        put_vector(&mut buf, &Vector::from_vec(vec![0.0, 3.0, 4.0]));
        buf.put_u32_le(1); // one layer
        buf.put_u32_le(0); // no neighbours
        let idx = HnswIndex::from_bytes(buf.freeze()).unwrap();
        let hits = idx.search(&Vector::from_vec(vec![0.0, 1.0, 0.0]), 1);
        assert_eq!(hits[0].id, tid(5));
        assert!(
            (hits[0].score - 0.6).abs() < 1e-6,
            "migrated vector must be normalized, got score {}",
            hits[0].score
        );
    }

    #[test]
    fn v1_hnsw_snapshot_body_decodes_identically() {
        // The v2 body is byte-for-byte the v1 body; only the header differs.
        // A real pre-invariant snapshot (unit vectors, same graph wire
        // format) must reload to an equivalent graph.
        let e = TextEmbedder::with_seed(11);
        let mut hnsw = HnswIndex::with_defaults();
        for (id, v) in corpus() {
            hnsw.add(id, v);
        }
        let v2 = hnsw.to_bytes();
        let mut v1 = BytesMut::new();
        v1.put_slice(b"VFAI\x01");
        v1.put_u8(v2[5]); // kind
        v1.put_slice(&v2[7..]); // body, minus the v2 flags byte
        let old = HnswIndex::from_bytes(v1.freeze()).unwrap();
        let q = e.embed("championship season");
        assert_eq!(old.search(&q, 4), hnsw.search(&q, 4));
    }

    #[test]
    fn unknown_snapshot_flags_rejected_not_misscored() {
        let mut flat = FlatIndex::new();
        flat.add(tid(0), Vector::from_vec(vec![1.0, 0.0]));
        let good = flat.to_bytes();
        let mut bad = good.to_vec();
        bad[6] |= 0x40; // a flag bit this decoder does not understand
        assert_eq!(
            FlatIndex::from_bytes(Bytes::from(bad.clone())).unwrap_err(),
            PersistError::BadFlags(FLAG_UNIT_NORM | 0x40)
        );
        bad[5] = SnapshotKind::Hnsw as u8;
        assert_eq!(
            HnswIndex::from_bytes(Bytes::from(bad)).unwrap_err(),
            PersistError::BadFlags(FLAG_UNIT_NORM | 0x40)
        );
    }

    #[test]
    fn trait_object_usable() {
        let mut indexes: Vec<Box<dyn VectorIndex>> = vec![
            Box::new(FlatIndex::new()),
            Box::new(HnswIndex::with_defaults()),
        ];
        let e = TextEmbedder::with_seed(11);
        for idx in &mut indexes {
            idx.add(tid(0), e.embed("shared content"));
            assert_eq!(idx.len(), 1);
            assert!(!idx.is_empty());
        }
    }
}
