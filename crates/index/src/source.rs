//! The `EvidenceSource` stage abstraction: the paper's Indexer (§3.1) as a
//! swappable retrieval backend.
//!
//! The staged pipeline in `verifai` drives retrieval through this trait so
//! that new backends (another content index, a different ANN structure, a
//! remote search service) plug in without reopening the pipeline. The
//! in-tree backends are the [`crate::InvertedIndex`] (content), the
//! [`crate::HnswIndex`] / [`crate::FlatIndex`] (semantic), and
//! [`FusedSource`], which composes several sources with a [`Combiner`] —
//! the Combiner step of §3.1 expressed as just another source.

use crate::{Combiner, SearchHit};
use verifai_embed::Vector;

/// A prepared retrieval query: the serialized object text plus, when the
/// caller ran an embedder, its vector form.
///
/// Sources consume whichever representation they understand: content
/// indexes read [`SourceQuery::text`], semantic indexes read
/// [`SourceQuery::vector`] (and return nothing when it is absent, i.e.
/// semantic retrieval is disabled).
#[derive(Debug, Clone, Copy)]
pub struct SourceQuery<'a> {
    /// The serialized query text.
    pub text: &'a str,
    /// The query embedding, when semantic retrieval is enabled.
    pub vector: Option<&'a Vector>,
}

/// An object-safe retrieval backend: given a prepared query, return the
/// coarse task-agnostic top-`k`.
///
/// Implementations must be cheap to call concurrently (`&self` search over
/// an immutable index), as the pipeline fans verification batches across
/// worker threads.
pub trait EvidenceSource: Send + Sync {
    /// Stable backend name for provenance records.
    fn name(&self) -> &'static str;

    /// The coarse top-`k` hits for `query`, best first.
    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit>;
}

impl EvidenceSource for crate::InvertedIndex {
    fn name(&self) -> &'static str {
        "bm25"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        crate::InvertedIndex::search(self, query.text, k)
    }
}

impl EvidenceSource for crate::HnswIndex {
    fn name(&self) -> &'static str {
        "hnsw"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }
}

impl EvidenceSource for crate::FlatIndex {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }
}

impl EvidenceSource for crate::SegmentedInvertedIndex {
    fn name(&self) -> &'static str {
        // Same name as the monolithic index: provenance records describe
        // the ranking function, and segmented BM25 scores identically.
        "bm25"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        crate::SegmentedInvertedIndex::search(self, query.text, k)
    }
}

impl EvidenceSource for crate::AnyVectorIndex {
    fn name(&self) -> &'static str {
        self.backend_name()
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }
}

/// Fuses the top-`k` lists of several sources with a [`Combiner`] (paper
/// §3.1: "a Combiner that merges results and removes duplicates").
///
/// The member order is the list order handed to the Combiner, which matters
/// for score-fusion strategies; keep content sources before semantic ones
/// to preserve the historical ranking.
pub struct FusedSource {
    sources: Vec<Box<dyn EvidenceSource>>,
    combiner: Combiner,
}

impl FusedSource {
    /// Fuse `sources` with `combiner`.
    pub fn new(sources: Vec<Box<dyn EvidenceSource>>, combiner: Combiner) -> FusedSource {
        FusedSource { sources, combiner }
    }

    /// The member sources, in fusion order.
    pub fn sources(&self) -> &[Box<dyn EvidenceSource>] {
        &self.sources
    }
}

impl EvidenceSource for FusedSource {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        let lists: Vec<Vec<SearchHit>> = self
            .sources
            .iter()
            .map(|source| source.search(query, k))
            .filter(|list| !list.is_empty())
            .collect();
        self.combiner.combine(&lists, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bm25Params, FusionStrategy, InvertedIndex};
    use verifai_lake::InstanceId;
    use verifai_text::Analyzer;

    fn content_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(Analyzer::standard(), Bm25Params::default());
        idx.add(InstanceId::Text(1), "the incumbent of new york one");
        idx.add(InstanceId::Text(2), "points scored in the championship");
        idx
    }

    #[test]
    fn inverted_index_is_a_source() {
        let idx = content_index();
        let source: &dyn EvidenceSource = &idx;
        let hits = source.search(
            SourceQuery {
                text: "incumbent new york",
                vector: None,
            },
            5,
        );
        assert_eq!(hits[0].id, InstanceId::Text(1));
        assert_eq!(source.name(), "bm25");
    }

    #[test]
    fn semantic_source_without_vector_is_empty() {
        let idx = crate::HnswIndex::new(crate::HnswConfig::default());
        let hits = EvidenceSource::search(
            &idx,
            SourceQuery {
                text: "anything",
                vector: None,
            },
            5,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn fused_source_matches_manual_combination() {
        let idx = content_index();
        let combiner = Combiner::new(FusionStrategy::ReciprocalRank { k0: 60.0 });
        let query = SourceQuery {
            text: "championship points",
            vector: None,
        };
        let manual = combiner.combine(&[crate::InvertedIndex::search(&idx, query.text, 5)], 5);
        let fused = FusedSource::new(vec![Box::new(content_index())], combiner);
        assert_eq!(fused.search(query, 5), manual);
        assert_eq!(fused.sources().len(), 1);
    }
}
