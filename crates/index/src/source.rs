//! The `EvidenceSource` stage abstraction: the paper's Indexer (§3.1) as a
//! swappable retrieval backend.
//!
//! The staged pipeline in `verifai` drives retrieval through this trait so
//! that new backends (another content index, a different ANN structure, a
//! remote search service) plug in without reopening the pipeline. The
//! in-tree backends are the [`crate::InvertedIndex`] (content), the
//! [`crate::HnswIndex`] / [`crate::FlatIndex`] (semantic), and
//! [`FusedSource`], which composes several sources with a [`Combiner`] —
//! the Combiner step of §3.1 expressed as just another source.

use crate::{Combiner, SearchHit};
use verifai_embed::Vector;
use verifai_obs::SpanContext;

/// A prepared retrieval query: the serialized object text plus, when the
/// caller ran an embedder, its vector form.
///
/// Sources consume whichever representation they understand: content
/// indexes read [`SourceQuery::text`], semantic indexes read
/// [`SourceQuery::vector`] (and return nothing when it is absent, i.e.
/// semantic retrieval is disabled).
///
/// [`SourceQuery::ctx`] carries the caller's trace coordinates across the
/// source boundary: distributed backends (the cluster router) record
/// per-shard child spans under `ctx` so the request's span tree spans the
/// fleet. Plain in-process indexes ignore it; untraced callers pass
/// [`SpanContext::none`].
#[derive(Debug, Clone, Copy)]
pub struct SourceQuery<'a> {
    /// The serialized query text.
    pub text: &'a str,
    /// The query embedding, when semantic retrieval is enabled.
    pub vector: Option<&'a Vector>,
    /// The caller's span-tree coordinates (trace id + parent span), or
    /// [`SpanContext::none`] when the request is untraced.
    pub ctx: SpanContext,
}

/// An object-safe retrieval backend: given a prepared query, return the
/// coarse task-agnostic top-`k`.
///
/// Implementations must be cheap to call concurrently (`&self` search over
/// an immutable index), as the pipeline fans verification batches across
/// worker threads.
pub trait EvidenceSource: Send + Sync {
    /// Stable backend name for provenance records.
    fn name(&self) -> &'static str;

    /// The coarse top-`k` hits for `query`, best first.
    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit>;

    /// The coarse top-`k` for each of `queries`, in order. The default is
    /// a per-query loop; backends with a real multi-query kernel (the flat
    /// index's blocked scan, a lock-amortizing live wrapper, the cluster
    /// router's batched scatter) override it. Results must be identical to
    /// calling [`EvidenceSource::search`] per query.
    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        queries.iter().map(|q| self.search(*q, k)).collect()
    }
}

/// Run a batch of [`SourceQuery`]s against a [`crate::VectorIndex`] via its
/// blocked multi-query kernel: queries with vectors share one scan, the
/// vector-less ones come back empty (semantic retrieval disabled), order
/// preserved.
fn vector_search_batch<I: crate::VectorIndex>(
    index: &I,
    queries: &[SourceQuery<'_>],
    k: usize,
) -> Vec<Vec<SearchHit>> {
    let dense: Vec<Vector> = queries.iter().filter_map(|q| q.vector.cloned()).collect();
    if dense.is_empty() {
        return vec![Vec::new(); queries.len()];
    }
    let mut results = index.search_batch(&dense, k).into_iter();
    queries
        .iter()
        .map(|q| match q.vector {
            Some(_) => results.next().unwrap_or_default(),
            None => Vec::new(),
        })
        .collect()
}

impl EvidenceSource for crate::InvertedIndex {
    fn name(&self) -> &'static str {
        "bm25"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        crate::InvertedIndex::search(self, query.text, k)
    }
}

impl EvidenceSource for crate::HnswIndex {
    fn name(&self) -> &'static str {
        "hnsw"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }

    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        vector_search_batch(self, queries, k)
    }
}

impl EvidenceSource for crate::FlatIndex {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }

    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        vector_search_batch(self, queries, k)
    }
}

impl EvidenceSource for crate::SegmentedInvertedIndex {
    fn name(&self) -> &'static str {
        // Same name as the monolithic index: provenance records describe
        // the ranking function, and segmented BM25 scores identically.
        "bm25"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        crate::SegmentedInvertedIndex::search(self, query.text, k)
    }
}

impl EvidenceSource for crate::AnyVectorIndex {
    fn name(&self) -> &'static str {
        self.backend_name()
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        match query.vector {
            Some(vector) => crate::VectorIndex::search(self, vector, k),
            None => Vec::new(),
        }
    }

    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        vector_search_batch(self, queries, k)
    }
}

/// Fuses the top-`k` lists of several sources with a [`Combiner`] (paper
/// §3.1: "a Combiner that merges results and removes duplicates").
///
/// The member order is the list order handed to the Combiner, which matters
/// for score-fusion strategies; keep content sources before semantic ones
/// to preserve the historical ranking.
pub struct FusedSource {
    sources: Vec<Box<dyn EvidenceSource>>,
    combiner: Combiner,
}

impl FusedSource {
    /// Fuse `sources` with `combiner`.
    pub fn new(sources: Vec<Box<dyn EvidenceSource>>, combiner: Combiner) -> FusedSource {
        FusedSource { sources, combiner }
    }

    /// The member sources, in fusion order.
    pub fn sources(&self) -> &[Box<dyn EvidenceSource>] {
        &self.sources
    }
}

impl EvidenceSource for FusedSource {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        let lists: Vec<Vec<SearchHit>> = self
            .sources
            .iter()
            .map(|source| source.search(query, k))
            .filter(|list| !list.is_empty())
            .collect();
        self.combiner.combine(&lists, k)
    }

    /// Batch fusion: each member sees the whole batch at once (so its
    /// multi-query kernel amortizes one scan), then the per-query member
    /// lists fuse exactly as the single-query path would.
    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        let per_member: Vec<Vec<Vec<SearchHit>>> = self
            .sources
            .iter()
            .map(|source| source.search_batch(queries, k))
            .collect();
        (0..queries.len())
            .map(|qi| {
                let lists: Vec<Vec<SearchHit>> = per_member
                    .iter()
                    .map(|member| member[qi].clone())
                    .filter(|list| !list.is_empty())
                    .collect();
                self.combiner.combine(&lists, k)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bm25Params, FusionStrategy, InvertedIndex};
    use verifai_lake::InstanceId;
    use verifai_text::Analyzer;

    fn content_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(Analyzer::standard(), Bm25Params::default());
        idx.add(InstanceId::Text(1), "the incumbent of new york one");
        idx.add(InstanceId::Text(2), "points scored in the championship");
        idx
    }

    #[test]
    fn inverted_index_is_a_source() {
        let idx = content_index();
        let source: &dyn EvidenceSource = &idx;
        let hits = source.search(
            SourceQuery {
                text: "incumbent new york",
                vector: None,
                ctx: SpanContext::none(),
            },
            5,
        );
        assert_eq!(hits[0].id, InstanceId::Text(1));
        assert_eq!(source.name(), "bm25");
    }

    #[test]
    fn semantic_source_without_vector_is_empty() {
        let idx = crate::HnswIndex::new(crate::HnswConfig::default());
        let hits = EvidenceSource::search(
            &idx,
            SourceQuery {
                text: "anything",
                vector: None,
                ctx: SpanContext::none(),
            },
            5,
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn batch_search_matches_per_query_for_every_source() {
        use crate::VectorIndex;
        use verifai_embed::TextEmbedder;
        let e = TextEmbedder::with_seed(7);
        let mut flat = crate::FlatIndex::new_quantized(4);
        for (i, t) in ["incumbent new york", "championship points", "film actress"]
            .iter()
            .enumerate()
        {
            flat.add(InstanceId::Text(i as u64), e.embed(t));
        }
        let v1 = e.embed("new york election");
        let v2 = e.embed("points in the championship");
        let queries = [
            SourceQuery {
                text: "new york election",
                vector: Some(&v1),
                ctx: SpanContext::none(),
            },
            SourceQuery {
                text: "mixed query without vector",
                vector: None,
                ctx: SpanContext::none(),
            },
            SourceQuery {
                text: "points in the championship",
                vector: Some(&v2),
                ctx: SpanContext::none(),
            },
        ];
        let combiner = Combiner::new(FusionStrategy::ReciprocalRank { k0: 60.0 });
        let fused = FusedSource::new(vec![Box::new(content_index()), Box::new(flat)], combiner);
        let source = &fused as &dyn EvidenceSource;
        let want: Vec<_> = queries.iter().map(|q| source.search(*q, 3)).collect();
        assert_eq!(source.search_batch(&queries, 3), want);
        // The vector-less query must come back empty from semantic members.
        let members = fused.sources();
        let semantic = members[1].search_batch(&queries, 3);
        assert!(semantic[1].is_empty());
        assert!(!semantic[0].is_empty());
    }

    #[test]
    fn fused_source_matches_manual_combination() {
        let idx = content_index();
        let combiner = Combiner::new(FusionStrategy::ReciprocalRank { k0: 60.0 });
        let query = SourceQuery {
            text: "championship points",
            vector: None,
            ctx: SpanContext::none(),
        };
        let manual = combiner.combine(&[crate::InvertedIndex::search(&idx, query.text, 5)], 5);
        let fused = FusedSource::new(vec![Box::new(content_index())], combiner);
        assert_eq!(fused.search(query, 5), manual);
        assert_eq!(fused.sources().len(), 1);
    }
}
