//! Search results.

use verifai_lake::InstanceId;

/// One ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The retrieved instance.
    pub id: InstanceId,
    /// Ranking score; higher is better. The scale depends on the producing
    /// index (BM25 score, cosine similarity, fused score, ...).
    pub score: f64,
}

impl SearchHit {
    /// Construct a hit.
    pub fn new(id: InstanceId, score: f64) -> SearchHit {
        SearchHit { id, score }
    }
}

/// Sort hits by descending score with deterministic id tiebreak.
pub fn sort_hits(hits: &mut [SearchHit]) {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_is_descending_and_deterministic() {
        let mut hits = vec![
            SearchHit::new(InstanceId::Tuple(2), 0.5),
            SearchHit::new(InstanceId::Tuple(1), 0.5),
            SearchHit::new(InstanceId::Tuple(3), 0.9),
        ];
        sort_hits(&mut hits);
        assert_eq!(hits[0].id, InstanceId::Tuple(3));
        // Equal scores break ties by id ascending.
        assert_eq!(hits[1].id, InstanceId::Tuple(1));
        assert_eq!(hits[2].id, InstanceId::Tuple(2));
    }
}
