//! Segmented inverted index: the live-mutable BM25 index.
//!
//! A monolithic [`InvertedIndex`] is append-only — deleting or updating a
//! document means rebuilding the whole index. This wrapper gives the content
//! path a log-structured lifecycle instead: writes land in one small mutable
//! **memtable** segment; when it reaches the seal threshold it is frozen
//! into the list of immutable **sealed** segments and a fresh memtable
//! starts. Deletes tombstone the document's ordinal inside whichever
//! segment holds it; once tombstones outnumber live documents, every
//! segment is merged into one compacted segment by pure posting-list
//! surgery ([`InvertedIndex::merge_compact`] — no re-analysis).
//!
//! ## Score equivalence with a monolithic index
//!
//! BM25 is corpus-relative, so naive per-segment scoring would drift as
//! segments fill. The index therefore maintains **live corpus statistics**
//! (document count, total length, per-term document frequencies over
//! non-tombstoned documents only) incrementally on every add/remove, and
//! every segment scores against those via
//! [`InvertedIndex::search_with`] with its tombstoned ordinals skipped.
//! Identical integer statistics, identical per-document term frequencies,
//! and the same sorted-term accumulation order make each document's score
//! **bit-identical** to a fresh monolithic index over the surviving corpus;
//! per-segment top-k then unions to the same global top-k under
//! [`sort_hits`]' total order. The interleaved-history property test in
//! `verifai` holds the system to exactly this.

use crate::content::{Bm25Params, CorpusStats, InvertedIndex};
use crate::hit::{sort_hits, SearchHit};
use crate::persist::{self, PersistError, SnapshotKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use verifai_lake::InstanceId;
use verifai_text::Analyzer;

/// Memtable size at which it is sealed into an immutable segment.
const DEFAULT_SEAL_THRESHOLD: usize = 256;
/// Sealed-segment count above which a merge runs even without tombstones.
const MAX_SEALED_SEGMENTS: usize = 8;

/// A mutable, segment-based BM25 index: one writable memtable, immutable
/// sealed segments, tombstoned deletes, and merge-based compaction. See the
/// module docs for the score-equivalence argument.
///
/// Invariant: every live external id is held by exactly one segment. Updates
/// are expressed as remove + add by the caller (the live lake layer).
#[derive(Debug)]
pub struct SegmentedInvertedIndex {
    analyzer: Analyzer,
    params: Bm25Params,
    memtable: InvertedIndex,
    /// id -> memtable ordinal, for live memtable documents.
    mem_locations: HashMap<InstanceId, u32>,
    mem_dead: HashSet<u32>,
    sealed: Vec<Arc<InvertedIndex>>,
    /// Tombstoned ordinals per sealed segment (parallel to `sealed`).
    dead: Vec<HashSet<u32>>,
    /// id -> (sealed segment index, ordinal), for live sealed documents.
    locations: HashMap<InstanceId, (usize, u32)>,
    /// Statistics of the *live* documents only, maintained incrementally.
    live: CorpusStats,
    /// Cluster-installed global stats overriding `live` during scoring.
    shared_stats: Option<Arc<CorpusStats>>,
    seal_threshold: usize,
    generation: u64,
    compactions: u64,
}

impl Default for SegmentedInvertedIndex {
    fn default() -> Self {
        SegmentedInvertedIndex::new(Analyzer::standard(), Bm25Params::default())
    }
}

impl SegmentedInvertedIndex {
    /// Empty index with the given analyzer and BM25 parameters.
    pub fn new(analyzer: Analyzer, params: Bm25Params) -> SegmentedInvertedIndex {
        SegmentedInvertedIndex {
            analyzer,
            params,
            memtable: InvertedIndex::new(analyzer, params),
            mem_locations: HashMap::new(),
            mem_dead: HashSet::new(),
            sealed: Vec::new(),
            dead: Vec::new(),
            locations: HashMap::new(),
            live: CorpusStats::default(),
            shared_stats: None,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            generation: 0,
            compactions: 0,
        }
    }

    /// Override the memtable seal threshold (builder-style). Small values
    /// force multi-segment layouts in tests.
    pub fn with_seal_threshold(mut self, threshold: usize) -> SegmentedInvertedIndex {
        self.seal_threshold = threshold.max(1);
        self
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.locations.len() + self.mem_locations.len()
    }

    /// True when no live documents remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments currently backing the index (sealed + non-empty memtable).
    pub fn segments(&self) -> usize {
        self.sealed.len() + usize::from(!self.memtable.is_empty())
    }

    /// Tombstoned documents not yet compacted away.
    pub fn tombstones(&self) -> usize {
        self.mem_dead.len() + self.dead.iter().map(HashSet::len).sum::<usize>()
    }

    /// Mutation generation: bumped on every add/remove, persisted.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Times compaction has merged the segments.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live-corpus statistics, for cross-shard merging.
    pub fn corpus_stats(&self) -> CorpusStats {
        self.live.clone()
    }

    /// Score against corpus-wide statistics instead of the live-local ones
    /// (the sharded invariant — see [`InvertedIndex::set_shared_stats`]).
    pub fn set_shared_stats(&mut self, stats: Arc<CorpusStats>) {
        self.shared_stats = Some(stats);
    }

    /// Add a document. The id must not be live in the index (updates are
    /// remove + add).
    pub fn add(&mut self, id: InstanceId, text: &str) {
        debug_assert!(
            !self.locations.contains_key(&id) && !self.mem_locations.contains_key(&id),
            "id {id:?} is already live; remove it before re-adding"
        );
        let ord = self.memtable.add(id, text);
        self.mem_locations.insert(id, ord);
        let tf = self.analyzer.term_frequencies(text);
        self.live.docs += 1;
        self.live.total_len += tf.values().map(|&f| f as u64).sum::<u64>();
        for term in tf.into_keys() {
            *self.live.doc_freqs.entry(term).or_insert(0) += 1;
        }
        self.generation += 1;
        if self.memtable.len() >= self.seal_threshold {
            self.seal();
        }
    }

    /// Tombstone the document live under `id`. `text` must be the exact
    /// text it was added with — it is re-analyzed to subtract the document's
    /// contribution from the live statistics (the index stores no text).
    /// Returns false (and changes nothing) when the id is not live.
    pub fn remove(&mut self, id: InstanceId, text: &str) -> bool {
        if let Some(ord) = self.mem_locations.remove(&id) {
            self.mem_dead.insert(ord);
        } else if let Some((seg, ord)) = self.locations.remove(&id) {
            self.dead[seg].insert(ord);
        } else {
            return false;
        }
        let tf = self.analyzer.term_frequencies(text);
        self.live.docs -= 1;
        self.live.total_len -= tf.values().map(|&f| f as u64).sum::<u64>();
        for term in tf.into_keys() {
            if let Some(df) = self.live.doc_freqs.get_mut(&term) {
                *df -= 1;
                if *df == 0 {
                    self.live.doc_freqs.remove(&term);
                }
            }
        }
        self.generation += 1;
        if self.should_compact() {
            self.compact();
        }
        true
    }

    /// Freeze the memtable into an immutable sealed segment and start a
    /// fresh one. No-op when the memtable is empty.
    pub fn seal(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let seg = self.sealed.len();
        let full = std::mem::replace(
            &mut self.memtable,
            InvertedIndex::new(self.analyzer, self.params),
        );
        self.sealed.push(Arc::new(full));
        self.dead.push(std::mem::take(&mut self.mem_dead));
        for (id, ord) in self.mem_locations.drain() {
            self.locations.insert(id, (seg, ord));
        }
    }

    /// Whether dead weight justifies a merge: tombstones outnumber live
    /// documents, or the sealed-segment count passed the fan-out cap.
    pub fn should_compact(&self) -> bool {
        let stored = self.memtable.len() + self.sealed.iter().map(|s| s.len()).sum::<usize>();
        let dead = self.tombstones();
        (dead > 0 && dead * 2 > stored) || self.sealed.len() > MAX_SEALED_SEGMENTS
    }

    /// Merge every segment (and the memtable) into one compacted sealed
    /// segment, dropping tombstones. Live insertion order is preserved, so
    /// the merged segment equals a fresh sequential build of the survivors.
    pub fn compact(&mut self) {
        if self.sealed.is_empty() && self.mem_dead.is_empty() {
            return;
        }
        let mut parts: Vec<(&InvertedIndex, &HashSet<u32>)> = self
            .sealed
            .iter()
            .map(|s| &**s)
            .zip(self.dead.iter())
            .collect();
        parts.push((&self.memtable, &self.mem_dead));
        let merged = InvertedIndex::merge_compact(&parts);
        self.locations = merged
            .doc_ids()
            .iter()
            .enumerate()
            .map(|(ord, &id)| (id, (0usize, ord as u32)))
            .collect();
        self.sealed = vec![Arc::new(merged)];
        self.dead = vec![HashSet::new()];
        self.memtable = InvertedIndex::new(self.analyzer, self.params);
        self.mem_locations.clear();
        self.mem_dead.clear();
        self.compactions += 1;
    }

    /// Top-k hits by BM25 over the live corpus: every segment scored
    /// against the same (shared or live) statistics with its tombstones
    /// skipped, merged under [`sort_hits`]' total order.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let stats: &CorpusStats = self.shared_stats.as_deref().unwrap_or(&self.live);
        let mut hits: Vec<SearchHit> = Vec::new();
        for (seg, dead) in self.sealed.iter().zip(self.dead.iter()) {
            hits.extend(seg.search_with(query, k, Some(stats), Some(dead)));
        }
        hits.extend(
            self.memtable
                .search_with(query, k, Some(stats), Some(&self.mem_dead)),
        );
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    /// Serialize into a version-3 snapshot (kind
    /// [`SnapshotKind::Segmented`]): generation, every segment (memtable
    /// last) as a length-prefixed [`InvertedIndex`] blob plus its sorted
    /// tombstone ordinals, then the live statistics in sorted term order.
    /// Deterministic for a given index state.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        persist::put_header(&mut buf, SnapshotKind::Segmented, 0);
        buf.put_u64_le(self.generation);
        buf.put_u64_le(self.compactions);
        let include_mem = !self.memtable.is_empty();
        buf.put_u32_le((self.sealed.len() + usize::from(include_mem)) as u32);
        let write_segment = |buf: &mut BytesMut, seg: &InvertedIndex, dead: &HashSet<u32>| {
            let blob = seg.to_bytes();
            buf.put_u32_le(blob.len() as u32);
            buf.put_slice(&blob);
            let mut ords: Vec<u32> = dead.iter().copied().collect();
            ords.sort_unstable();
            buf.put_u32_le(ords.len() as u32);
            for o in ords {
                buf.put_u32_le(o);
            }
        };
        for (seg, dead) in self.sealed.iter().zip(self.dead.iter()) {
            write_segment(&mut buf, seg, dead);
        }
        if include_mem {
            write_segment(&mut buf, &self.memtable, &self.mem_dead);
        }
        buf.put_u64_le(self.live.docs);
        buf.put_u64_le(self.live.total_len);
        let mut terms: Vec<(&String, &u64)> = self.live.doc_freqs.iter().collect();
        terms.sort_unstable();
        buf.put_u32_le(terms.len() as u32);
        for (term, &df) in terms {
            persist::put_str(&mut buf, term);
            buf.put_u64_le(df);
        }
        buf.freeze()
    }

    /// Reconstruct from a snapshot.
    ///
    /// Accepts two shapes: a [`SnapshotKind::Segmented`] snapshot produced
    /// by [`Self::to_bytes`], or — the migration path — any monolithic
    /// [`SnapshotKind::Inverted`] snapshot (v1/v2/v3), which loads as a
    /// single sealed segment with generation 0 and its statistics derived
    /// from the postings. Loaded segments are all sealed; the memtable
    /// starts fresh.
    pub fn from_bytes(buf: Bytes) -> Result<SegmentedInvertedIndex, PersistError> {
        if persist::peek_kind(&buf)? == SnapshotKind::Inverted as u8 {
            let seg = InvertedIndex::from_bytes(buf)?;
            return Ok(SegmentedInvertedIndex::from_monolith(seg));
        }
        let mut buf = buf;
        let _ = persist::check_header(&mut buf, SnapshotKind::Segmented)?;
        let generation = persist::get_u64(&mut buf)?;
        let compactions = persist::get_u64(&mut buf)?;
        let nsegs = persist::get_u32(&mut buf)? as usize;
        let mut sealed = Vec::with_capacity(nsegs);
        let mut dead = Vec::with_capacity(nsegs);
        let mut locations = HashMap::new();
        for seg_idx in 0..nsegs {
            let blob_len = persist::get_u32(&mut buf)? as usize;
            if buf.remaining() < blob_len {
                return Err(PersistError::Truncated);
            }
            let blob = buf.copy_to_bytes(blob_len);
            let seg = InvertedIndex::from_bytes(blob)?;
            let ndead = persist::get_u32(&mut buf)? as usize;
            let mut dead_set = HashSet::with_capacity(ndead);
            for _ in 0..ndead {
                let ord = persist::get_u32(&mut buf)?;
                if ord as usize >= seg.len() {
                    return Err(PersistError::BadTag(ord as u8));
                }
                dead_set.insert(ord);
            }
            for (ord, &id) in seg.doc_ids().iter().enumerate() {
                if !dead_set.contains(&(ord as u32)) {
                    locations.insert(id, (seg_idx, ord as u32));
                }
            }
            sealed.push(Arc::new(seg));
            dead.push(dead_set);
        }
        let docs = persist::get_u64(&mut buf)?;
        let total_len = persist::get_u64(&mut buf)?;
        let nterms = persist::get_u32(&mut buf)? as usize;
        let mut doc_freqs = HashMap::with_capacity(nterms);
        for _ in 0..nterms {
            let term = persist::get_str(&mut buf)?;
            doc_freqs.insert(term, persist::get_u64(&mut buf)?);
        }
        let (analyzer, params) = sealed
            .first()
            .map(|s| (s.analyzer(), s.params()))
            .unwrap_or_else(|| (Analyzer::standard(), Bm25Params::default()));
        Ok(SegmentedInvertedIndex {
            analyzer,
            params,
            memtable: InvertedIndex::new(analyzer, params),
            mem_locations: HashMap::new(),
            mem_dead: HashSet::new(),
            sealed,
            dead,
            locations,
            live: CorpusStats {
                docs,
                total_len,
                doc_freqs,
            },
            shared_stats: None,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            generation,
            compactions,
        })
    }

    /// Wrap a monolithic index as a single sealed segment (the v1/v2
    /// migration path and the batch-build fast path).
    pub fn from_monolith(seg: InvertedIndex) -> SegmentedInvertedIndex {
        let analyzer = seg.analyzer();
        let params = seg.params();
        let live = seg.corpus_stats();
        let locations: HashMap<InstanceId, (usize, u32)> = seg
            .doc_ids()
            .iter()
            .enumerate()
            .map(|(ord, &id)| (id, (0usize, ord as u32)))
            .collect();
        let empty = seg.is_empty();
        SegmentedInvertedIndex {
            analyzer,
            params,
            memtable: InvertedIndex::new(analyzer, params),
            mem_locations: HashMap::new(),
            mem_dead: HashSet::new(),
            sealed: if empty {
                Vec::new()
            } else {
                vec![Arc::new(seg)]
            },
            dead: if empty {
                Vec::new()
            } else {
                vec![HashSet::new()]
            },
            locations,
            live,
            shared_stats: None,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            generation: 0,
            compactions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Text(i)
    }

    fn texts() -> Vec<String> {
        (0..40u64)
            .map(|i| {
                format!(
                    "document {} about {} with extra {} words",
                    i,
                    [
                        "jordan basketball",
                        "election district",
                        "film actress",
                        "championship track"
                    ][(i % 4) as usize],
                    ["chicago", "york", "stomp", "ncaa"][(i % 4) as usize]
                )
            })
            .collect()
    }

    fn monolith_of(surviving: &[(u64, &str)]) -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        for &(i, t) in surviving {
            idx.add(tid(i), t);
        }
        idx
    }

    #[test]
    fn segmented_matches_monolith_bit_exact() {
        // Multi-segment layout (tiny seal threshold) with interleaved
        // deletes must score bit-identically to a fresh monolithic build of
        // the survivors.
        let all = texts();
        let mut seg = SegmentedInvertedIndex::default().with_seal_threshold(7);
        for (i, t) in all.iter().enumerate() {
            seg.add(tid(i as u64), t);
        }
        let mut survivors: Vec<(u64, &str)> = Vec::new();
        for (i, t) in all.iter().enumerate() {
            if i % 3 == 0 {
                assert!(seg.remove(tid(i as u64), t));
            } else {
                survivors.push((i as u64, t));
            }
        }
        let mono = monolith_of(&survivors);
        assert_eq!(seg.len(), mono.len());
        for q in [
            "jordan basketball chicago",
            "election district york",
            "film actress stomp",
            "document words",
        ] {
            assert_eq!(seg.search(q, 10), mono.search(q, 10), "query {q}");
        }
    }

    #[test]
    fn update_is_remove_then_add() {
        let mut seg = SegmentedInvertedIndex::default().with_seal_threshold(3);
        for i in 0..9u64 {
            seg.add(tid(i), &format!("original text number {i}"));
        }
        assert!(seg.remove(tid(4), "original text number 4"));
        seg.add(tid(4), "completely replaced zebra content");
        let hits = seg.search("zebra", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, tid(4));
        // The monolith of the surviving state agrees.
        let mut mono = InvertedIndex::default();
        for i in (0..9u64).filter(|&i| i != 4) {
            mono.add(tid(i), &format!("original text number {i}"));
        }
        mono.add(tid(4), "completely replaced zebra content");
        assert_eq!(
            seg.search("original number", 10),
            mono.search("original number", 10)
        );
    }

    #[test]
    fn compaction_triggers_and_preserves_scores() {
        let all = texts();
        let mut seg = SegmentedInvertedIndex::default().with_seal_threshold(5);
        for (i, t) in all.iter().enumerate() {
            seg.add(tid(i as u64), t);
        }
        let before_segments = seg.segments();
        assert!(before_segments > 1, "tiny threshold must create segments");
        // Delete until tombstones dominate — compaction must fire.
        for (i, t) in all.iter().enumerate().take(24) {
            seg.remove(tid(i as u64), t);
        }
        assert!(seg.compactions() >= 1, "compaction should have triggered");
        // Removes after the last auto-compaction may have re-accumulated a
        // few tombstones; an explicit merge sheds them all.
        seg.compact();
        assert_eq!(seg.tombstones(), 0);
        let survivors: Vec<(u64, &str)> = all
            .iter()
            .enumerate()
            .skip(24)
            .map(|(i, t)| (i as u64, t.as_str()))
            .collect();
        let mono = monolith_of(&survivors);
        for q in ["jordan basketball", "championship ncaa"] {
            assert_eq!(seg.search(q, 10), mono.search(q, 10), "query {q}");
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let all = texts();
        let mut seg = SegmentedInvertedIndex::default().with_seal_threshold(7);
        for (i, t) in all.iter().enumerate() {
            seg.add(tid(i as u64), t);
        }
        for (i, t) in all.iter().enumerate().take(5) {
            seg.remove(tid(i as u64), t);
        }
        let bytes = seg.to_bytes();
        let back = SegmentedInvertedIndex::from_bytes(bytes.clone()).unwrap();
        assert_eq!(back.len(), seg.len());
        assert_eq!(back.generation(), seg.generation());
        assert_eq!(back.corpus_stats(), seg.corpus_stats());
        for q in ["jordan basketball", "film actress stomp"] {
            assert_eq!(back.search(q, 10), seg.search(q, 10), "query {q}");
        }
        // Deterministic encoding.
        assert_eq!(
            bytes,
            SegmentedInvertedIndex::from_bytes(bytes.clone())
                .unwrap()
                .to_bytes()
        );
        // A reloaded index keeps mutating correctly.
        let mut back = back;
        back.add(tid(999), "fresh post-reload zebra document");
        assert_eq!(back.search("zebra", 2)[0].id, tid(999));
    }

    #[test]
    fn monolith_snapshots_migrate_to_single_segment() {
        let mut mono = InvertedIndex::default();
        mono.add(tid(0), "alpha beta gamma");
        mono.add(tid(1), "delta epsilon zeta");
        // v3 monolith blob.
        let seg = SegmentedInvertedIndex::from_bytes(mono.to_bytes()).unwrap();
        assert_eq!(seg.segments(), 1);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.search("alpha", 2), mono.search("alpha", 2));
        // And the index is mutable after migration.
        let mut seg = seg;
        assert!(seg.remove(tid(0), "alpha beta gamma"));
        assert!(seg.search("alpha", 2).is_empty());
    }

    #[test]
    fn snapshot_rejects_garbage_and_truncation() {
        assert!(SegmentedInvertedIndex::from_bytes(Bytes::from_static(b"nah")).is_err());
        let mut seg = SegmentedInvertedIndex::default().with_seal_threshold(3);
        for i in 0..7u64 {
            seg.add(tid(i), &format!("words {i} here"));
        }
        let full = seg.to_bytes();
        for cut in (0..full.len()).step_by(3) {
            assert!(
                SegmentedInvertedIndex::from_bytes(full.slice(0..cut)).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn shared_stats_make_sharded_segmented_scores_global() {
        // Two segmented "shards" with merged stats installed must together
        // equal one whole-corpus monolith, mutations included.
        let all = texts();
        let mut a = SegmentedInvertedIndex::default().with_seal_threshold(4);
        let mut b = SegmentedInvertedIndex::default().with_seal_threshold(4);
        for (i, t) in all.iter().enumerate() {
            if i % 2 == 0 {
                a.add(tid(i as u64), t);
            } else {
                b.add(tid(i as u64), t);
            }
        }
        a.remove(tid(6), &all[6]);
        b.remove(tid(9), &all[9]);
        let mut merged = a.corpus_stats();
        merged.merge(&b.corpus_stats());
        let merged = Arc::new(merged);
        a.set_shared_stats(merged.clone());
        b.set_shared_stats(merged);
        let survivors: Vec<(u64, &str)> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 6 && *i != 9)
            .map(|(i, t)| (i as u64, t.as_str()))
            .collect();
        let mono = monolith_of(&survivors);
        for q in ["jordan basketball chicago", "election district"] {
            let mut hits = a.search(q, 10);
            hits.extend(b.search(q, 10));
            sort_hits(&mut hits);
            hits.truncate(10);
            assert_eq!(hits, mono.search(q, 10), "query {q}");
        }
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut seg = SegmentedInvertedIndex::default();
        seg.add(tid(0), "something here");
        let g = seg.generation();
        assert!(!seg.remove(tid(99), "whatever"));
        assert_eq!(seg.generation(), g);
        assert_eq!(seg.len(), 1);
    }
}
