//! The Combiner (paper §3.1).
//!
//! "While different indexes use different techniques (e.g., content- or
//! semantic-based), their retrieved results typically overlap. The Combiner
//! simply combines these retrieved results from multiple indexes and removes
//! duplicates." — we additionally support principled rank fusion, since raw BM25
//! scores and cosine similarities are not on a common scale.

use crate::hit::{sort_hits, SearchHit};
use std::collections::HashMap;
use verifai_lake::InstanceId;

/// How scores from different indexes are fused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionStrategy {
    /// Keep each instance's maximum score across lists. Only meaningful when the
    /// input lists share a score scale.
    MaxScore,
    /// Reciprocal-rank fusion: `score(d) = Σ_lists 1 / (k0 + rank)`. Scale-free,
    /// the standard way to combine heterogeneous rankers.
    ReciprocalRank {
        /// Rank smoothing constant (60 is the canonical choice).
        k0: f64,
    },
}

impl Default for FusionStrategy {
    fn default() -> Self {
        FusionStrategy::ReciprocalRank { k0: 60.0 }
    }
}

/// Merges ranked lists from multiple indexes and removes duplicates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Combiner {
    strategy: FusionStrategy,
}

impl Combiner {
    /// Combiner with the given fusion strategy.
    pub fn new(strategy: FusionStrategy) -> Combiner {
        Combiner { strategy }
    }

    /// Fuse result lists into a deduplicated ranking of up to `k` hits.
    pub fn combine(&self, lists: &[Vec<SearchHit>], k: usize) -> Vec<SearchHit> {
        let mut fused: HashMap<InstanceId, f64> = HashMap::new();
        match self.strategy {
            FusionStrategy::MaxScore => {
                for list in lists {
                    for hit in list {
                        let e = fused.entry(hit.id).or_insert(f64::NEG_INFINITY);
                        if hit.score > *e {
                            *e = hit.score;
                        }
                    }
                }
            }
            FusionStrategy::ReciprocalRank { k0 } => {
                for list in lists {
                    for (rank, hit) in list.iter().enumerate() {
                        *fused.entry(hit.id).or_insert(0.0) += 1.0 / (k0 + rank as f64 + 1.0);
                    }
                }
            }
        }
        let mut hits: Vec<SearchHit> = fused
            .into_iter()
            .map(|(id, score)| SearchHit::new(id, score))
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Text(i)
    }

    #[test]
    fn deduplicates_across_lists() {
        let c = Combiner::default();
        let a = vec![SearchHit::new(tid(1), 9.0), SearchHit::new(tid(2), 5.0)];
        let b = vec![SearchHit::new(tid(2), 0.8), SearchHit::new(tid(3), 0.7)];
        let out = c.combine(&[a, b], 10);
        assert_eq!(out.len(), 3);
        let ids: Vec<InstanceId> = out.iter().map(|h| h.id).collect();
        assert!(ids.contains(&tid(1)) && ids.contains(&tid(2)) && ids.contains(&tid(3)));
    }

    #[test]
    fn rrf_prefers_instances_ranked_high_in_both() {
        let c = Combiner::default();
        // tid(2) is rank 2 in list a and rank 1 in list b; tid(1) only rank 1 in a.
        let a = vec![SearchHit::new(tid(1), 9.0), SearchHit::new(tid(2), 5.0)];
        let b = vec![SearchHit::new(tid(2), 0.9)];
        let out = c.combine(&[a, b], 10);
        assert_eq!(out[0].id, tid(2));
    }

    #[test]
    fn rrf_ignores_raw_scales() {
        // Same ranking, wildly different scales — fusion must be identical.
        let c = Combiner::default();
        let bm25 = vec![SearchHit::new(tid(1), 42.0), SearchHit::new(tid(2), 13.0)];
        let cosine = vec![SearchHit::new(tid(1), 0.42), SearchHit::new(tid(2), 0.13)];
        let out1 = c.combine(std::slice::from_ref(&bm25), 10);
        let out2 = c.combine(&[cosine], 10);
        assert_eq!(
            out1.iter().map(|h| h.id).collect::<Vec<_>>(),
            out2.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn max_score_keeps_best() {
        let c = Combiner::new(FusionStrategy::MaxScore);
        let a = vec![SearchHit::new(tid(1), 1.0)];
        let b = vec![SearchHit::new(tid(1), 3.0)];
        let out = c.combine(&[a, b], 10);
        assert_eq!(out[0].score, 3.0);
    }

    #[test]
    fn k_truncates() {
        let c = Combiner::default();
        let a: Vec<SearchHit> = (0..20)
            .map(|i| SearchHit::new(tid(i), 20.0 - i as f64))
            .collect();
        assert_eq!(c.combine(&[a], 5).len(), 5);
    }

    #[test]
    fn empty_inputs() {
        let c = Combiner::default();
        assert!(c.combine(&[], 5).is_empty());
        assert!(c.combine(&[vec![], vec![]], 5).is_empty());
    }
}
