#![warn(missing_docs)]
//! # verifai-index
//!
//! The Indexer substrate (paper §3.1).
//!
//! The Indexer is *task-agnostic* and supports both **content-based** and
//! **semantic-based** search:
//!
//! * [`content::InvertedIndex`] — a tokenizing inverted index with BM25 ranking,
//!   the Elasticsearch substitute;
//! * [`trie::TrieIndex`] — prefix/exact lookup over serialized strings (the
//!   paper mentions tries/suffix structures as alternative content indexes);
//! * [`vector::FlatIndex`] — exact nearest-neighbour search over embeddings;
//! * [`vector::HnswIndex`] — approximate nearest-neighbour search (the
//!   Faiss/pgvector substitute);
//! * [`combiner::Combiner`] — merges the top-k lists of several indexes and
//!   removes duplicates (paper §3.1 "Combiner"), with score- or
//!   reciprocal-rank fusion;
//! * [`source::EvidenceSource`] — the object-safe retrieval-stage trait the
//!   staged pipeline drives, implemented by the content and semantic indexes
//!   and by [`source::FusedSource`] (several sources behind one Combiner).
//!
//! All indexes key their entries by [`verifai_lake::InstanceId`], so results from
//! different modalities and index types can be combined freely.

pub mod combiner;
pub mod content;
pub mod hit;
pub mod persist;
pub mod segment;
pub mod source;
pub mod trie;
pub mod vector;

pub use combiner::{Combiner, FusionStrategy};
pub use content::{Bm25Params, CorpusStats, InvertedIndex};
pub use hit::SearchHit;
pub use persist::{save_atomic, PersistError};
pub use segment::SegmentedInvertedIndex;
pub use source::{EvidenceSource, FusedSource, SourceQuery};
pub use trie::TrieIndex;
pub use vector::{
    AnyVectorIndex, FlatIndex, HnswConfig, HnswIndex, VectorIndex, DEFAULT_RESCORE_FACTOR,
};
