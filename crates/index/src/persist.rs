//! Binary persistence of indexes.
//!
//! Rebuilding the content and semantic indexes dominates system start-up at
//! lake scale (minutes at the paper's corpus size), so both support a compact
//! binary snapshot: build once, [`crate::InvertedIndex::to_bytes`] /
//! [`crate::HnswIndex::to_bytes`], and reload in milliseconds. The format is a
//! versioned little-endian encoding with no external schema.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use verifai_lake::InstanceId;

/// Magic prefix of every snapshot.
pub const MAGIC: &[u8; 4] = b"VFAI";
/// Current format version.
///
/// * Version 1 — no flags byte; vector payloads eagerly decoded.
/// * Version 2 — appends a flags byte to the header.
/// * Version 3 — the live-lake format: every snapshot carries a `u64`
///   generation immediately after the header; vector indexes carry
///   per-entry tombstone bytes and store their vector payload as one
///   contiguous `f32` slab (loaded in bulk into a shared allocation,
///   [`verifai_embed::Vector::from_slab`]); HNSW additionally persists its
///   cached edge distances so load skips the re-derivation pass.
///
/// * Version 4 — flat vector snapshots append the int8 quantization
///   sidecar (per-vector scales + the contiguous code array) behind
///   [`FLAG_QUANT_CODES`], so a reload serves the quantized two-phase
///   scan without a re-encode pass.
///
/// Version 1 through 3 snapshots are still decoded (migrated on load);
/// pre-3 generations are 0 and carry no tombstones, and pre-4 flat
/// snapshots re-quantize their vectors on load (quantization is a pure
/// function of the floats, so the rebuilt codes are bit-identical to
/// what an eager v4 writer would have produced).
pub const VERSION: u8 = 4;
/// Header flag: every stored vector is unit-normalized, so similarity is a
/// single fused dot. Vector snapshots without this flag are migrated by
/// normalizing on load — never silently mis-scored.
pub const FLAG_UNIT_NORM: u8 = 1;
/// Header flag: the flat snapshot body carries the int8 quantization
/// sidecar (scales + codes) after the f32 slab. Snapshots without it are
/// migrated by re-quantizing on load.
pub const FLAG_QUANT_CODES: u8 = 2;
/// All flag bits any decoder understands; unknown bits are a typed error.
const KNOWN_FLAGS: u8 = FLAG_UNIT_NORM | FLAG_QUANT_CODES;

/// Snapshot kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// An [`crate::InvertedIndex`].
    Inverted = 1,
    /// A [`crate::FlatIndex`].
    Flat = 2,
    /// An [`crate::HnswIndex`].
    Hnsw = 3,
    /// A [`crate::SegmentedInvertedIndex`] (v3+ only).
    Segmented = 4,
}

/// Errors decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer is shorter than the encoding requires.
    Truncated,
    /// The magic prefix is missing.
    BadMagic,
    /// The version byte is unknown.
    BadVersion(u8),
    /// The kind tag does not match the requested index type.
    BadKind {
        /// Kind expected by the decoder.
        expected: u8,
        /// Kind found in the snapshot.
        got: u8,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum tag is out of range.
    BadTag(u8),
    /// The header carries flag bits this decoder does not understand.
    BadFlags(u8),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::BadMagic => write!(f, "not a VerifAI index snapshot"),
            PersistError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::BadKind { expected, got } => {
                write!(f, "snapshot kind {got} does not match expected {expected}")
            }
            PersistError::BadUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            PersistError::BadTag(t) => write!(f, "snapshot contains invalid tag {t}"),
            PersistError::BadFlags(bits) => {
                write!(f, "snapshot carries unknown header flags {bits:#04x}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Write the current-version snapshot header: magic, version, kind, flags.
pub(crate) fn put_header(buf: &mut BytesMut, kind: SnapshotKind, flags: u8) {
    put_header_versioned(buf, kind, flags, VERSION);
}

/// Write a snapshot header at an explicit `version` — the legacy encoders
/// (`to_bytes_v2`) use this to produce migration-test and cold-load-bench
/// fixtures in the older wire formats.
pub(crate) fn put_header_versioned(buf: &mut BytesMut, kind: SnapshotKind, flags: u8, version: u8) {
    buf.put_slice(MAGIC);
    buf.put_u8(version);
    buf.put_u8(kind as u8);
    if version >= 2 {
        buf.put_u8(flags);
    }
}

/// Check and consume the snapshot header, returning `(version, flags)`.
///
/// Accepts versions 1 through [`VERSION`]. Version-1 (pre-flags) headers
/// decode with flags `0`, so vector decoders see the unit-norm invariant as
/// *not* guaranteed and migrate by normalizing. Unknown flag bits are
/// rejected outright; decoders branch on the returned version to pick the
/// body format.
pub(crate) fn check_header(buf: &mut Bytes, kind: SnapshotKind) -> Result<(u8, u8), PersistError> {
    if buf.remaining() < 6 {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u8();
    if version == 0 || version > VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let got = buf.get_u8();
    if got != kind as u8 {
        return Err(PersistError::BadKind {
            expected: kind as u8,
            got,
        });
    }
    let flags = if version >= 2 { get_u8(buf)? } else { 0 };
    if flags & !KNOWN_FLAGS != 0 {
        return Err(PersistError::BadFlags(flags));
    }
    Ok((version, flags))
}

/// The kind tag of a snapshot without consuming it, so composite decoders
/// (the segmented index, the live-lake loader) can dispatch on what a blob
/// holds before handing it to the matching typed decoder.
pub fn peek_kind(buf: &[u8]) -> Result<u8, PersistError> {
    if buf.len() < 6 {
        return Err(PersistError::Truncated);
    }
    if &buf[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    Ok(buf[5])
}

/// Write `bytes` to `path` crash-safely: the payload goes to a sibling
/// temporary file which is fsynced and atomically renamed over the target,
/// so a crash mid-write leaves either the old snapshot or the new one,
/// never a torn file.
pub fn save_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Encode a string as `u32 length + UTF-8 bytes`.
pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decode a string.
pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, PersistError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(PersistError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| PersistError::BadUtf8)
}

/// Decode a little-endian u32 with bounds checking.
pub(crate) fn get_u32(buf: &mut Bytes) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Decode a little-endian u64 with bounds checking.
pub(crate) fn get_u64(buf: &mut Bytes) -> Result<u64, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Decode a little-endian f64 with bounds checking.
pub(crate) fn get_f64(buf: &mut Bytes) -> Result<f64, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_f64_le())
}

/// Decode a little-endian f32 with bounds checking.
pub(crate) fn get_f32(buf: &mut Bytes) -> Result<f32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_f32_le())
}

/// Decode a single byte with bounds checking.
pub(crate) fn get_u8(buf: &mut Bytes) -> Result<u8, PersistError> {
    if buf.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Encode an [`InstanceId`] as kind tag + raw id.
pub(crate) fn put_instance_id(buf: &mut BytesMut, id: InstanceId) {
    let tag = match id {
        InstanceId::Tuple(_) => 0u8,
        InstanceId::Table(_) => 1,
        InstanceId::Text(_) => 2,
        InstanceId::Kg(_) => 3,
    };
    buf.put_u8(tag);
    buf.put_u64_le(id.raw());
}

/// Decode an [`InstanceId`].
pub(crate) fn get_instance_id(buf: &mut Bytes) -> Result<InstanceId, PersistError> {
    let tag = get_u8(buf)?;
    let raw = get_u64(buf)?;
    Ok(match tag {
        0 => InstanceId::Tuple(raw),
        1 => InstanceId::Table(raw),
        2 => InstanceId::Text(raw),
        3 => InstanceId::Kg(raw),
        other => return Err(PersistError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_and_mismatch() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, SnapshotKind::Inverted, FLAG_UNIT_NORM);
        let mut b = buf.clone().freeze();
        assert_eq!(
            check_header(&mut b, SnapshotKind::Inverted),
            Ok((VERSION, FLAG_UNIT_NORM))
        );
        let mut b = buf.freeze();
        assert_eq!(
            check_header(&mut b, SnapshotKind::Hnsw),
            Err(PersistError::BadKind {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn version_one_headers_decode_with_zero_flags() {
        // A pre-invariant header: magic, version 1, kind — no flags byte.
        let mut b = Bytes::from_static(b"VFAI\x01\x02");
        assert_eq!(check_header(&mut b, SnapshotKind::Flat), Ok((1, 0)));
        assert_eq!(b.remaining(), 0, "v1 header consumes exactly six bytes");
    }

    #[test]
    fn unknown_flags_and_versions_rejected() {
        let mut b = Bytes::from_static(b"VFAI\x02\x02\x80");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::BadFlags(0x80))
        );
        let mut b = Bytes::from_static(b"VFAI\x05\x02\x00");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::BadVersion(5))
        );
        let mut b = Bytes::from_static(b"VFAI\x00\x02\x00");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::BadVersion(0))
        );
        // A v2 header truncated before its flags byte.
        let mut b = Bytes::from_static(b"VFAI\x02\x02");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn bad_magic_and_truncation() {
        let mut b = Bytes::from_static(b"NOPE\x01\x01");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::BadMagic)
        );
        let mut b = Bytes::from_static(b"VF");
        assert_eq!(
            check_header(&mut b, SnapshotKind::Flat),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn string_and_id_roundtrip() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "incumbent");
        put_instance_id(&mut buf, InstanceId::Kg(42));
        let mut b = buf.freeze();
        assert_eq!(get_str(&mut b).unwrap(), "incumbent");
        assert_eq!(get_instance_id(&mut b).unwrap(), InstanceId::Kg(42));
        assert_eq!(get_u8(&mut b), Err(PersistError::Truncated));
    }

    #[test]
    fn invalid_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u64_le(1);
        let mut b = buf.freeze();
        assert_eq!(get_instance_id(&mut b), Err(PersistError::BadTag(9)));
    }
}
