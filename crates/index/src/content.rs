//! The content-based index: a tokenizing inverted index with BM25 ranking.
//!
//! This is the Elasticsearch substitute. Documents (serialized instances) are
//! analyzed into terms; postings record per-document term frequencies; queries
//! are analyzed with the *same* analyzer and scored with Okapi BM25.

use crate::hit::{sort_hits, SearchHit};
use crate::persist::{self, PersistError, SnapshotKind};
use bytes::{BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use verifai_lake::InstanceId;
use verifai_obs::meter;
use verifai_text::{Analyzer, AnalyzerConfig};

/// Corpus-wide statistics BM25 scoring depends on: document count, total
/// analyzed length, and per-term document frequencies.
///
/// A single index computes these from its own postings. A *sharded* corpus
/// cannot — each shard sees only its partition, and shard-local idf /
/// average-length would score the same document differently depending on
/// which shard it landed on. Shard builders therefore [`merge`] the stats
/// of every partition and hand the global totals back to each shard via
/// [`InvertedIndex::set_shared_stats`], making per-shard scores exactly
/// equal to a single whole-corpus index.
///
/// [`merge`]: CorpusStats::merge
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Number of indexed documents.
    pub docs: u64,
    /// Sum of analyzed document lengths.
    pub total_len: u64,
    /// Analyzed term → number of documents containing it.
    pub doc_freqs: HashMap<String, u64>,
}

impl CorpusStats {
    /// Fold another partition's statistics into this one. Commutative and
    /// associative, so shard merge order does not matter.
    pub fn merge(&mut self, other: &CorpusStats) {
        self.docs += other.docs;
        self.total_len += other.total_len;
        for (term, df) in &other.doc_freqs {
            *self.doc_freqs.entry(term.clone()).or_insert(0) += df;
        }
    }
}

/// BM25 tuning parameters (Elasticsearch defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A posting: internal document ordinal and term frequency.
#[derive(Debug, Clone, Copy)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// Inverted index over serialized data instances.
#[derive(Debug)]
pub struct InvertedIndex {
    analyzer: Analyzer,
    params: Bm25Params,
    postings: HashMap<String, Vec<Posting>>,
    /// doc ordinal -> external id.
    ids: Vec<InstanceId>,
    /// doc ordinal -> analyzed length.
    lengths: Vec<u32>,
    total_len: u64,
    /// Global corpus statistics overriding the local ones during scoring.
    /// `None` (the default, and what snapshots reload to) means this index
    /// IS the whole corpus. Set by shard builders after a cross-shard merge.
    shared_stats: Option<Arc<CorpusStats>>,
}

/// Heap entry for top-k selection (min-heap on score).
struct HeapEntry {
    score: f64,
    doc: u32,
    id: InstanceId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.id == other.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller scores at the top of the heap so we can evict
        // them. Ties evict the *largest external id*, mirroring
        // `sort_hits`' total order (score desc, id asc) — the survivors at
        // a tied k-boundary are then the same set a whole-corpus index
        // keeps, which is what makes sharded top-k merge exact.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex::new(Analyzer::standard(), Bm25Params::default())
    }
}

impl InvertedIndex {
    /// Index with the given analyzer and BM25 parameters.
    pub fn new(analyzer: Analyzer, params: Bm25Params) -> InvertedIndex {
        InvertedIndex {
            analyzer,
            params,
            postings: HashMap::new(),
            ids: Vec::new(),
            lengths: Vec::new(),
            total_len: 0,
            shared_stats: None,
        }
    }

    /// This index's own corpus statistics, for cross-shard merging.
    pub fn corpus_stats(&self) -> CorpusStats {
        CorpusStats {
            docs: self.ids.len() as u64,
            total_len: self.total_len,
            doc_freqs: self
                .postings
                .iter()
                .map(|(term, postings)| (term.clone(), postings.len() as u64))
                .collect(),
        }
    }

    /// Score against corpus-wide statistics instead of this index's own.
    ///
    /// With the merged stats of every shard installed, a shard-local index
    /// scores each of its documents identically to a single index over the
    /// whole corpus — the invariant sharded scatter/gather relies on.
    pub fn set_shared_stats(&mut self, stats: Arc<CorpusStats>) {
        self.shared_stats = Some(stats);
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Add a document. Returns its internal ordinal.
    pub fn add(&mut self, id: InstanceId, text: &str) -> u32 {
        let doc = self.ids.len() as u32;
        self.ids.push(id);
        let tf = self.analyzer.term_frequencies(text);
        let len: u32 = tf.values().sum();
        self.lengths.push(len);
        self.total_len += len as u64;
        // Deterministic posting construction: sort terms so the postings map's
        // vectors are built in a stable order regardless of HashMap iteration.
        let mut terms: Vec<(String, u32)> = tf.into_iter().collect();
        terms.sort_unstable();
        for (term, freq) in terms {
            match self.postings.entry(term) {
                Entry::Occupied(mut e) => e.get_mut().push(Posting { doc, tf: freq }),
                Entry::Vacant(e) => {
                    e.insert(vec![Posting { doc, tf: freq }]);
                }
            }
        }
        doc
    }

    /// BM25 inverse document frequency of a term in a corpus of `n` docs.
    fn idf(n: f64, df: f64) -> f64 {
        // The "+1" form used by Lucene: always positive.
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Search the index, returning the top-k hits by BM25 score.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.search_with(query, k, None, None)
    }

    /// Search with explicit overrides: `stats` forces the corpus-wide
    /// statistics BM25 uses (taking precedence over any installed shared
    /// stats), and `skip` suppresses documents by internal ordinal.
    ///
    /// This is the segmented-index primitive: each sealed segment is scored
    /// against the *live* corpus statistics with its tombstoned ordinals
    /// skipped, which makes the per-segment scores — and therefore the
    /// merged top-k — bit-identical to one monolithic index over the
    /// surviving corpus. With explicit stats, a term whose corpus-wide
    /// document frequency is zero (every holder deleted) is skipped
    /// outright: its postings here are all dead.
    pub fn search_with(
        &self,
        query: &str,
        k: usize,
        stats: Option<&CorpusStats>,
        skip: Option<&HashSet<u32>>,
    ) -> Vec<SearchHit> {
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        let qterms = self.analyzer.term_frequencies(query);
        if qterms.is_empty() {
            return Vec::new();
        }
        // Corpus-wide doc count and average length: explicit stats first,
        // then the shared (merged) statistics when installed, then this
        // index's own.
        let (n_docs, total_len) = match (stats, &self.shared_stats) {
            (Some(s), _) => (s.docs as f64, s.total_len as f64),
            (None, Some(s)) if s.docs > 0 => (s.docs as f64, s.total_len as f64),
            _ => (self.ids.len() as f64, self.total_len as f64),
        };
        if n_docs <= 0.0 {
            return Vec::new();
        }
        let avg_len = total_len / n_docs;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        let mut visited = 0u64;
        // Stable term order for reproducible floating-point accumulation.
        let mut qvec: Vec<(&String, &u32)> = qterms.iter().collect();
        qvec.sort_unstable();
        for (term, &qf) in qvec {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            visited += postings.len() as u64;
            let df = match (stats, &self.shared_stats) {
                (Some(s), _) => {
                    let live = s.doc_freqs.get(term).copied().unwrap_or(0);
                    if live == 0 {
                        continue;
                    }
                    live as f64
                }
                (None, Some(s)) => s
                    .doc_freqs
                    .get(term)
                    .copied()
                    .unwrap_or(postings.len() as u64) as f64,
                (None, None) => postings.len() as f64,
            };
            let idf = Self::idf(n_docs, df);
            for p in postings {
                if skip.is_some_and(|dead| dead.contains(&p.doc)) {
                    continue;
                }
                let dl = self.lengths[p.doc as usize] as f64;
                let tf = p.tf as f64;
                let denom =
                    tf + self.params.k1 * (1.0 - self.params.b + self.params.b * dl / avg_len);
                let contrib = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(p.doc).or_insert(0.0) += contrib * qf as f64;
            }
        }
        // One tally update per query: a posting is a (doc, tf) pair, 8
        // bytes as laid out in the snapshot format.
        meter::charge_postings(visited, visited * 8);
        // Top-k selection with a size-k min-heap.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        for (doc, score) in scores {
            heap.push(HeapEntry {
                score,
                doc,
                id: self.ids[doc as usize],
            });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap
            .into_iter()
            .map(|e| SearchHit::new(self.ids[e.doc as usize], e.score))
            .collect();
        sort_hits(&mut hits);
        hits
    }

    /// Serialize the index into a versioned binary snapshot.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.ids.len() * 16);
        persist::put_header(&mut buf, SnapshotKind::Inverted, 0);
        let cfg = self.analyzer.config();
        buf.put_u8(cfg.lowercase as u8);
        buf.put_u8(cfg.remove_stopwords as u8);
        buf.put_u8(cfg.stem as u8);
        buf.put_f64_le(self.params.k1);
        buf.put_f64_le(self.params.b);
        buf.put_u64_le(self.total_len);
        buf.put_u32_le(self.ids.len() as u32);
        for (id, &len) in self.ids.iter().zip(self.lengths.iter()) {
            persist::put_instance_id(&mut buf, *id);
            buf.put_u32_le(len);
        }
        // Postings in sorted term order for deterministic snapshots.
        let mut terms: Vec<&String> = self.postings.keys().collect();
        terms.sort_unstable();
        buf.put_u32_le(terms.len() as u32);
        for term in terms {
            persist::put_str(&mut buf, term);
            let postings = &self.postings[term];
            buf.put_u32_le(postings.len() as u32);
            for p in postings {
                buf.put_u32_le(p.doc);
                buf.put_u32_le(p.tf);
            }
        }
        buf.freeze()
    }

    /// Reconstruct an index from a snapshot produced by [`Self::to_bytes`].
    pub fn from_bytes(mut buf: Bytes) -> Result<InvertedIndex, PersistError> {
        persist::check_header(&mut buf, SnapshotKind::Inverted)?;
        let lowercase = persist::get_u8(&mut buf)? != 0;
        let remove_stopwords = persist::get_u8(&mut buf)? != 0;
        let stem = persist::get_u8(&mut buf)? != 0;
        let k1 = persist::get_f64(&mut buf)?;
        let b = persist::get_f64(&mut buf)?;
        let total_len = persist::get_u64(&mut buf)?;
        let n_docs = persist::get_u32(&mut buf)? as usize;
        let mut ids = Vec::with_capacity(n_docs);
        let mut lengths = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            ids.push(persist::get_instance_id(&mut buf)?);
            lengths.push(persist::get_u32(&mut buf)?);
        }
        let n_terms = persist::get_u32(&mut buf)? as usize;
        let mut postings = HashMap::with_capacity(n_terms);
        for _ in 0..n_terms {
            let term = persist::get_str(&mut buf)?;
            let n = persist::get_u32(&mut buf)? as usize;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let doc = persist::get_u32(&mut buf)?;
                let tf = persist::get_u32(&mut buf)?;
                list.push(Posting { doc, tf });
            }
            postings.insert(term, list);
        }
        Ok(InvertedIndex {
            analyzer: Analyzer::new(AnalyzerConfig {
                lowercase,
                remove_stopwords,
                stem,
            }),
            params: Bm25Params { k1, b },
            postings,
            ids,
            lengths,
            total_len,
            // Shared stats are runtime wiring, not part of the snapshot; a
            // reloaded shard gets them re-installed by its builder.
            shared_stats: None,
        })
    }

    /// Document frequency of an (analyzed) term — exposed for diagnostics.
    pub fn doc_frequency(&self, term: &str) -> usize {
        let analyzed = self.analyzer.analyze(term);
        analyzed
            .first()
            .and_then(|t| self.postings.get(t))
            .map(|p| p.len())
            .unwrap_or(0)
    }

    /// The external ids in internal-ordinal order.
    pub fn doc_ids(&self) -> &[InstanceId] {
        &self.ids
    }

    /// The analyzer this index tokenizes with.
    pub fn analyzer(&self) -> Analyzer {
        self.analyzer
    }

    /// The BM25 parameters this index scores with.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Merge segments into one compacted index, dropping each segment's
    /// dead ordinals.
    ///
    /// Surviving documents are renumbered in `(segment, ordinal)` order, so
    /// the result is exactly the index a fresh sequential build over the
    /// surviving documents (in that order) would produce: posting lists stay
    /// sorted by document ordinal, per-document term frequencies and lengths
    /// are carried over verbatim, and no re-analysis happens. The merge is
    /// pure posting-list surgery — O(total postings), not O(total text).
    pub fn merge_compact(parts: &[(&InvertedIndex, &HashSet<u32>)]) -> InvertedIndex {
        let (analyzer, params) = parts
            .first()
            .map(|(seg, _)| (seg.analyzer, seg.params))
            .unwrap_or_else(|| (Analyzer::standard(), Bm25Params::default()));
        let mut merged = InvertedIndex::new(analyzer, params);
        // Per-segment remap: old ordinal -> new ordinal (dead -> None).
        let mut remaps: Vec<Vec<Option<u32>>> = Vec::with_capacity(parts.len());
        for (seg, dead) in parts {
            let mut remap = Vec::with_capacity(seg.ids.len());
            for (ord, (&id, &len)) in seg.ids.iter().zip(seg.lengths.iter()).enumerate() {
                if dead.contains(&(ord as u32)) {
                    remap.push(None);
                } else {
                    remap.push(Some(merged.ids.len() as u32));
                    merged.ids.push(id);
                    merged.lengths.push(len);
                    merged.total_len += len as u64;
                }
            }
            remaps.push(remap);
        }
        for ((seg, _), remap) in parts.iter().zip(remaps.iter()) {
            for (term, postings) in &seg.postings {
                let list = merged.postings.entry(term.clone()).or_default();
                for p in postings {
                    if let Some(doc) = remap[p.doc as usize] {
                        list.push(Posting { doc, tf: p.tf });
                    }
                }
            }
        }
        // A term may exist only in dead documents; drop its empty list so
        // vocabulary and snapshots match a fresh build exactly.
        merged.postings.retain(|_, list| !list.is_empty());
        // Posting lists were appended per segment in segment order; within a
        // segment they are ordinal-sorted already, and later segments map to
        // larger ordinals, so each list is sorted. Debug-check the invariant.
        debug_assert!(merged
            .postings
            .values()
            .all(|l| l.windows(2).all(|w| w[0].doc < w[1].doc)));
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Text(i)
    }

    fn small_index() -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        idx.add(
            tid(0),
            "Meagan Good is an American actress born in Panorama City",
        );
        idx.add(
            tid(1),
            "Stomp the Yard is a 2007 dance drama film starring Columbus Short",
        );
        idx.add(
            tid(2),
            "Michael Jordan played basketball for the Chicago Bulls",
        );
        idx.add(
            tid(3),
            "The 1959 NCAA track and field championships were held in June",
        );
        idx
    }

    #[test]
    fn exact_topic_match_ranks_first() {
        let idx = small_index();
        let hits = idx.search("Meagan Good actress", 2);
        assert_eq!(hits[0].id, tid(0));
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn k_limits_results() {
        let idx = small_index();
        assert_eq!(idx.search("the", 10).len(), 0); // stopword-only query
        assert!(idx.search("film dance basketball", 2).len() <= 2);
        assert!(idx.search("film", 0).is_empty());
    }

    #[test]
    fn empty_index_and_query() {
        let idx = InvertedIndex::default();
        assert!(idx.search("anything", 5).is_empty());
        let idx = small_index();
        assert!(idx.search("", 5).is_empty());
    }

    #[test]
    fn idf_downweights_common_terms() {
        let mut idx = InvertedIndex::default();
        for i in 0..20 {
            idx.add(tid(i), "common filler text");
        }
        idx.add(tid(100), "common rare filler");
        let hits = idx.search("rare", 5);
        assert_eq!(hits[0].id, tid(100));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rarer_match_beats_frequent_match() {
        let idx = small_index();
        // "basketball" appears once — doc 2 must beat docs matching "the".
        let hits = idx.search("basketball career statistics", 4);
        assert_eq!(hits[0].id, tid(2));
    }

    #[test]
    fn stemming_bridges_inflection() {
        let idx = small_index();
        let hits = idx.search("championship", 4);
        assert_eq!(hits[0].id, tid(3)); // matches "championships"
    }

    #[test]
    fn length_normalization_prefers_concise_docs() {
        let mut idx = InvertedIndex::default();
        idx.add(tid(0), "jordan");
        idx.add(
            tid(1),
            "jordan mentioned once inside a much longer document about many other things entirely \
             unrelated to the query regarding sports and athletes and so on",
        );
        let hits = idx.search("jordan", 2);
        assert_eq!(hits[0].id, tid(0));
    }

    #[test]
    fn deterministic_across_builds() {
        let a = small_index().search("dance film 2007", 4);
        let b = small_index().search("dance film 2007", 4);
        assert_eq!(a, b);
    }

    #[test]
    fn doc_frequency_reports_analyzed_terms() {
        let idx = small_index();
        assert_eq!(idx.doc_frequency("basketball"), 1);
        assert_eq!(idx.doc_frequency("zebra"), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_rankings() {
        let idx = small_index();
        let restored = InvertedIndex::from_bytes(idx.to_bytes()).unwrap();
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.vocabulary_size(), idx.vocabulary_size());
        for q in [
            "Meagan Good actress",
            "basketball career",
            "championship 1959",
        ] {
            assert_eq!(restored.search(q, 4), idx.search(q, 4), "query {q}");
        }
        // Snapshots are deterministic.
        assert_eq!(idx.to_bytes(), restored.to_bytes());
    }

    #[test]
    fn snapshot_rejects_garbage() {
        use crate::persist::PersistError;
        assert!(matches!(
            InvertedIndex::from_bytes(bytes::Bytes::from_static(b"garbage")),
            Err(PersistError::BadMagic | PersistError::Truncated)
        ));
        // Truncated valid snapshot.
        let full = small_index().to_bytes();
        let cut = full.slice(0..full.len() / 2);
        assert!(InvertedIndex::from_bytes(cut).is_err());
    }

    #[test]
    fn shared_stats_make_shard_scores_global() {
        // Split the corpus across two "shards"; with merged CorpusStats
        // installed, each shard scores its documents exactly as the
        // whole-corpus index does.
        let global = small_index();
        let texts = [
            "Meagan Good is an American actress born in Panorama City",
            "Stomp the Yard is a 2007 dance drama film starring Columbus Short",
            "Michael Jordan played basketball for the Chicago Bulls",
            "The 1959 NCAA track and field championships were held in June",
        ];
        let mut shard_a = InvertedIndex::default();
        let mut shard_b = InvertedIndex::default();
        for (i, text) in texts.iter().enumerate() {
            let shard = if i % 2 == 0 {
                &mut shard_a
            } else {
                &mut shard_b
            };
            shard.add(tid(i as u64), text);
        }
        let mut merged = shard_a.corpus_stats();
        merged.merge(&shard_b.corpus_stats());
        assert_eq!(merged, global.corpus_stats());
        let merged = Arc::new(merged);
        shard_a.set_shared_stats(merged.clone());
        shard_b.set_shared_stats(merged);
        for q in ["Meagan Good actress", "basketball film", "championship"] {
            let mut sharded: Vec<SearchHit> = shard_a.search(q, 10);
            sharded.extend(shard_b.search(q, 10));
            sort_hits(&mut sharded);
            assert_eq!(sharded, global.search(q, 10), "query {q}");
        }
    }

    #[test]
    fn tied_scores_keep_smallest_ids_at_k_boundary() {
        // Identical documents tie exactly; the k survivors must be the
        // smallest ids (sort_hits' total order), not heap-insertion order.
        let mut idx = InvertedIndex::default();
        for i in 0..10 {
            idx.add(tid(i), "identical zebra document");
        }
        let hits = idx.search("zebra", 4);
        let ids: Vec<InstanceId> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![tid(0), tid(1), tid(2), tid(3)]);
    }

    #[test]
    fn vocabulary_grows() {
        let idx = small_index();
        assert!(idx.vocabulary_size() > 10);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Top-k results are always sorted by descending score.
        #[test]
        fn results_sorted(docs in proptest::collection::vec("[a-z ]{5,40}", 1..20),
                          query in "[a-z ]{1,20}", k in 1usize..10) {
            let mut idx = InvertedIndex::default();
            for (i, d) in docs.iter().enumerate() {
                idx.add(InstanceId::Text(i as u64), d);
            }
            let hits = idx.search(&query, k);
            prop_assert!(hits.len() <= k);
            for w in hits.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
        }

        /// A document is always retrievable by its own (non-stopword) content.
        #[test]
        fn self_retrieval(content in "[b-df-hj-np-tv-xz]{4,10} [b-df-hj-np-tv-xz]{4,10}") {
            let mut idx = InvertedIndex::default();
            idx.add(InstanceId::Text(0), &content);
            idx.add(InstanceId::Text(1), "completely different words here");
            let hits = idx.search(&content, 1);
            prop_assert_eq!(hits[0].id, InstanceId::Text(0));
        }
    }
}
