//! A trie index over serialized strings.
//!
//! The paper lists "special data structures such as Tries or suffix trees" as
//! content-based index options. [`TrieIndex`] supports exact and prefix lookup
//! over normalized serializations — useful for key-value probes (e.g. "find
//! every tuple whose serialization starts with `district is new york 1`").

use crate::hit::SearchHit;
use std::collections::HashMap;
use verifai_lake::value::normalize_str;
use verifai_lake::InstanceId;

/// Node in the trie, keyed by byte.
#[derive(Debug, Default)]
struct Node {
    children: HashMap<u8, Node>,
    /// Instances whose full normalized serialization ends at this node.
    terminals: Vec<InstanceId>,
}

/// Byte-level trie over normalized strings.
#[derive(Debug, Default)]
pub struct TrieIndex {
    root: Node,
    len: usize,
}

impl TrieIndex {
    /// Empty trie.
    pub fn new() -> TrieIndex {
        TrieIndex::default()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an instance under its serialization (normalized internally).
    pub fn add(&mut self, id: InstanceId, text: &str) {
        let key = normalize_str(text);
        let mut node = &mut self.root;
        for b in key.bytes() {
            node = node.children.entry(b).or_default();
        }
        node.terminals.push(id);
        self.len += 1;
    }

    /// Exact lookup of a serialization.
    pub fn get_exact(&self, text: &str) -> Vec<InstanceId> {
        let key = normalize_str(text);
        let mut node = &self.root;
        for b in key.bytes() {
            match node.children.get(&b) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        node.terminals.clone()
    }

    /// All instances whose serialization starts with `prefix`, up to `limit`.
    /// Scores are 1.0 for exact-length matches, decaying with extra length, so
    /// shorter (more exact) completions rank first.
    pub fn search_prefix(&self, prefix: &str, limit: usize) -> Vec<SearchHit> {
        let key = normalize_str(prefix);
        let mut node = &self.root;
        for b in key.bytes() {
            match node.children.get(&b) {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        // Depth-first walk with deterministic child order.
        let mut stack: Vec<(&Node, usize)> = vec![(node, 0)];
        while let Some((n, extra)) = stack.pop() {
            for &id in &n.terminals {
                if out.len() >= limit {
                    return out;
                }
                out.push(SearchHit::new(id, 1.0 / (1.0 + extra as f64)));
            }
            let mut kids: Vec<(&u8, &Node)> = n.children.iter().collect();
            kids.sort_by_key(|(b, _)| std::cmp::Reverse(**b));
            for (_, child) in kids {
                stack.push((child, extra + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> InstanceId {
        InstanceId::Tuple(i)
    }

    #[test]
    fn exact_lookup_normalizes() {
        let mut t = TrieIndex::new();
        t.add(tid(1), "District is New York 1");
        assert_eq!(t.get_exact("district is new york 1"), vec![tid(1)]);
        assert_eq!(t.get_exact("DISTRICT IS NEW YORK 1!"), vec![tid(1)]);
        assert!(t.get_exact("district is new york").is_empty()); // prefix ≠ exact
    }

    #[test]
    fn prefix_search_finds_all_completions() {
        let mut t = TrieIndex::new();
        t.add(tid(1), "district is new york 1");
        t.add(tid(2), "district is new york 2");
        t.add(tid(3), "district is ohio 5");
        let hits = t.search_prefix("district is new york", 10);
        let ids: Vec<InstanceId> = hits.iter().map(|h| h.id).collect();
        assert!(ids.contains(&tid(1)) && ids.contains(&tid(2)));
        assert!(!ids.contains(&tid(3)));
    }

    #[test]
    fn prefix_limit_respected() {
        let mut t = TrieIndex::new();
        for i in 0..100 {
            t.add(tid(i), &format!("value {i}"));
        }
        assert_eq!(t.search_prefix("value", 7).len(), 7);
    }

    #[test]
    fn shorter_completions_score_higher() {
        let mut t = TrieIndex::new();
        t.add(tid(1), "abc");
        t.add(tid(2), "abcdef");
        let hits = t.search_prefix("abc", 10);
        let s1 = hits.iter().find(|h| h.id == tid(1)).unwrap().score;
        let s2 = hits.iter().find(|h| h.id == tid(2)).unwrap().score;
        assert!(s1 > s2);
    }

    #[test]
    fn missing_prefix_is_empty() {
        let t = TrieIndex::new();
        assert!(t.search_prefix("zzz", 5).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_serializations_all_returned() {
        let mut t = TrieIndex::new();
        t.add(tid(1), "same text");
        t.add(tid(2), "same text");
        assert_eq!(t.get_exact("same text").len(), 2);
        assert_eq!(t.len(), 2);
    }
}
