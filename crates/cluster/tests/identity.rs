//! The cluster's headline invariant: for any shard count N, the routed
//! scatter/gather system returns results *identical* to a single-lake
//! build — same hits, same order under the total tie-break, and
//! byte-for-byte equal verification reports.
//!
//! The single-lake reference is built with the exact (flat) semantic
//! backend, since HNSW results depend on insertion history and no sharded
//! layout can reproduce them.

use verifai::{DataObject, SemanticBackend, VerifAi, VerifAiConfig};
use verifai_claims::ClaimGenConfig;
use verifai_cluster::{build_cluster, ClusterConfig};
use verifai_datagen::{build, claim_workload, completion_workload, LakeSpec};
use verifai_lake::InstanceKind;

fn flat_config() -> VerifAiConfig {
    VerifAiConfig {
        semantic_backend: SemanticBackend::Flat,
        ..VerifAiConfig::default()
    }
}

/// Workload objects plus free-text queries covering every modality slot.
fn probes(sys: &VerifAi) -> (Vec<DataObject>, Vec<String>) {
    let tasks = completion_workload(sys.generated(), 6, 3);
    let claims = claim_workload(sys.generated(), 6, ClaimGenConfig::default());
    let mut objects: Vec<DataObject> = tasks.iter().map(|t| sys.impute(t)).collect();
    objects.extend(claims.iter().map(|c| sys.claim_object(c)));
    let queries = objects.iter().map(VerifAi::query_of).collect();
    (objects, queries)
}

#[test]
fn routed_results_identical_to_single_lake_for_all_shard_counts() {
    let spec = LakeSpec::tiny(31);
    let reference = VerifAi::build(build(&spec), flat_config());
    let (objects, queries) = probes(&reference);
    let kinds = [
        InstanceKind::Tuple,
        InstanceKind::Table,
        InstanceKind::Text,
        InstanceKind::Kg,
    ];
    for shards in 1..=8 {
        let cluster = build_cluster(
            build(&spec),
            flat_config(),
            ClusterConfig::with_shards(shards),
        );
        // Raw per-modality retrieval: same hits, same scores, same order.
        for query in &queries {
            for kind in kinds {
                let want = reference.retrieve(query, kind, 12);
                let got = cluster.system.retrieve(query, kind, 12);
                assert_eq!(
                    got, want,
                    "retrieve diverged: shards={shards} kind={kind:?} query={query:?}"
                );
            }
        }
        // End-to-end verification: rerank, verify, decide over routed
        // evidence must produce the same (timing-excluded) report.
        for object in &objects {
            let want = reference.verify_object(object);
            let got = cluster.system.verify_object(object);
            assert_eq!(got, want, "report diverged at shards={shards}");
        }
        // Sanity: for N > 1 the work was actually spread out.
        if shards > 1 {
            let active = cluster
                .router
                .searches_per_shard()
                .iter()
                .filter(|&&c| c > 0)
                .count();
            assert!(active > 1, "all searches landed on one shard");
        }
    }
}

#[test]
fn shard_sizes_cover_the_lake() {
    let spec = LakeSpec::tiny(7);
    let single = build_cluster(build(&spec), flat_config(), ClusterConfig::with_shards(1));
    let total: usize = single.router.shard_sizes().iter().sum();
    for shards in 2..=5 {
        let cluster = build_cluster(
            build(&spec),
            flat_config(),
            ClusterConfig::with_shards(shards),
        );
        let sizes = cluster.router.shard_sizes();
        assert_eq!(sizes.len(), shards);
        assert_eq!(
            sizes.iter().sum::<usize>(),
            total,
            "instances lost or duplicated"
        );
    }
}

/// HNSW shards are *exercised* (not just flat): per-shard graphs have
/// their own insertion histories, so byte-identity cannot hold — the
/// invariant weakens to recall against the exact flat reference. This is
/// deliberately recall-based, not order-based.
#[test]
fn hnsw_shards_recall_the_flat_reference() {
    let spec = LakeSpec::tiny(31);
    let reference = VerifAi::build(build(&spec), flat_config());
    let (_, queries) = probes(&reference);
    // Default config keeps the HNSW backend — previously the builder forced
    // Flat, leaving sharded HNSW untested.
    let cluster = build_cluster(
        build(&spec),
        VerifAiConfig::default(),
        ClusterConfig::with_shards(3),
    );
    let kinds = [
        InstanceKind::Tuple,
        InstanceKind::Table,
        InstanceKind::Text,
        InstanceKind::Kg,
    ];
    let (mut found, mut wanted) = (0usize, 0usize);
    for query in &queries {
        for kind in kinds {
            let want = reference.retrieve(query, kind, 8);
            let got = cluster.system.retrieve(query, kind, 8);
            wanted += want.len();
            found += want
                .iter()
                .filter(|w| got.iter().any(|g| g.id == w.id))
                .count();
        }
    }
    assert!(wanted > 0, "reference returned nothing");
    let recall = found as f64 / wanted as f64;
    assert!(
        recall >= 0.7,
        "sharded HNSW recall vs flat reference too low: {recall:.3} ({found}/{wanted})"
    );
}

/// Live mutations routed through the cluster keep the byte-identity
/// invariant: a single-lake live system fed the same mutation stream
/// retrieves identically (flat backend on both sides).
#[test]
fn routed_mutations_match_single_lake_live_system() {
    use verifai::LakeMutation;
    use verifai_lake::TextDocument;

    let spec = LakeSpec::tiny(43);
    let mut reference = VerifAi::build(build(&spec), flat_config());
    let mut cluster = build_cluster(build(&spec), flat_config(), ClusterConfig::with_shards(3));

    // A mutation stream touching every op family: doc add/update/remove,
    // tuple add/remove.
    let table_id = reference
        .lake()
        .tables()
        .next()
        .expect("lake has tables")
        .id;
    let arity = reference.lake().table(table_id).unwrap().schema.arity();
    let victim_doc = reference.lake().docs().next().expect("lake has docs").id;
    let mutations = vec![
        LakeMutation::AddDoc(TextDocument::new(
            7700,
            "Breaking update",
            "A freshly streamed document about district incumbents.",
            0,
        )),
        LakeMutation::UpdateDoc {
            id: 7700,
            title: "Corrected update".into(),
            body: "The corrected streamed document names a different incumbent.".into(),
        },
        LakeMutation::AddTuple {
            table: table_id,
            values: (0..arity)
                .map(|c| verifai_lake::Value::text(format!("streamed{c}")))
                .collect(),
        },
        LakeMutation::RemoveDoc(victim_doc),
    ];
    for m in mutations {
        let want = reference.apply(m.clone()).expect("reference applies");
        let got = cluster.apply(m).expect("cluster applies");
        assert_eq!(got.generation, want.generation, "generations diverged");
    }
    // Remove one tuple (the freshly streamed one) on both sides.
    let new_tuple = reference
        .lake()
        .tuples_of_table(table_id)
        .into_iter()
        .next_back()
        .expect("table has tuples");
    reference
        .apply(LakeMutation::RemoveTuple(new_tuple))
        .expect("reference removes");
    cluster
        .apply(LakeMutation::RemoveTuple(new_tuple))
        .expect("cluster removes");
    assert_eq!(
        cluster.router.generation_watermark(),
        reference.lake().generation(),
        "watermark must reach the lake generation"
    );

    let (_, queries) = probes(&reference);
    let kinds = [
        InstanceKind::Tuple,
        InstanceKind::Table,
        InstanceKind::Text,
        InstanceKind::Kg,
    ];
    for query in queries.iter().chain([
        &"freshly streamed document incumbents".to_string(),
        &"streamed0 streamed1".to_string(),
    ]) {
        for kind in kinds {
            let want = reference.retrieve(query, kind, 12);
            let got = cluster.system.retrieve(query, kind, 12);
            assert_eq!(
                got, want,
                "post-mutation retrieve diverged: kind={kind:?} query={query:?}"
            );
        }
    }
}

/// The batched scatter path returns exactly what per-query scatters would,
/// for both the exact and the quantized flat shard backends (the quantized
/// identity is per-router: same shards, same shortlists).
#[test]
fn routed_batch_search_matches_per_query_search() {
    use verifai_embed::TextEmbedder;
    use verifai_index::SourceQuery;
    let spec = LakeSpec::tiny(31);
    for config in [
        flat_config(),
        VerifAiConfig {
            quantized: true,
            ..flat_config()
        },
    ] {
        let cluster = build_cluster(build(&spec), config, ClusterConfig::with_shards(3));
        let (_, texts) = probes(&cluster.system);
        let embedder = TextEmbedder::with_seed(9);
        let vectors: Vec<_> = texts.iter().map(|t| embedder.embed(t)).collect();
        // Every fourth query goes vector-less (semantic member disabled).
        let queries: Vec<SourceQuery<'_>> = texts
            .iter()
            .zip(&vectors)
            .enumerate()
            .map(|(i, (text, vector))| SourceQuery {
                text,
                vector: (i % 4 != 3).then_some(vector),
                ctx: verifai_obs::SpanContext::none(),
            })
            .collect();
        for kind in [InstanceKind::Tuple, InstanceKind::Table, InstanceKind::Text] {
            let want: Vec<_> = queries
                .iter()
                .map(|q| cluster.router.search(kind, *q, 10))
                .collect();
            assert_eq!(
                cluster.router.search_batch(kind, &queries, 10),
                want,
                "batched scatter diverged: kind={kind:?} quantized={}",
                config.quantized
            );
        }
    }
}

#[test]
fn router_snapshot_carries_shard_labels() {
    let spec = LakeSpec::tiny(11);
    let cluster = build_cluster(build(&spec), flat_config(), ClusterConfig::with_shards(3));
    let (_, queries) = probes(&cluster.system);
    for query in &queries {
        cluster.system.retrieve(query, InstanceKind::Tuple, 8);
    }
    let text = verifai_obs::render_prometheus(&cluster.router.snapshot());
    for shard in 0..3 {
        assert!(
            text.contains(&format!(
                "verifai_shard_searches_total{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} series in:\n{text}"
        );
    }
    assert!(text.contains("verifai_quality_shard_slo_fast_burn"));
    let json = verifai_obs::render_json(&cluster.router.snapshot()).to_string();
    assert!(
        json.contains("verifai_shard_searches_total{shard=\\\"2\\\"}"),
        "labeled series key missing from JSON export: {json}"
    );
}
