//! The scatter/gather front end: fan a query out to every shard, gather
//! per-shard top-k, merge, and fuse — behind the same [`EvidenceSource`]
//! trait the single-lake pipeline retrieves through.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use verifai::{IndexOp, MutationOutcome};
use verifai_embed::{TextEmbedder, Vector};
use verifai_index::{Combiner, CorpusStats, EvidenceSource, SearchHit, SourceQuery, VectorIndex};
use verifai_lake::InstanceKind;
use verifai_obs::{
    meter, ns_between, Alert, AlertKind, AlertLog, BurnRateTracker, Clock, CostVector, Counter,
    FlightRecorder, FloatGauge, Gauge, Histogram, Registry, RegistrySnapshot, RequestTrace,
    Severity, SloConfig, SpanContext, SpanEvent, SpanLog, TraceId,
};

use crate::merge::merge_topk;
use crate::partition::shard_of;
use crate::shard::{Shard, ShardContent, ShardJob, ShardSemantic};

/// Which member index of a fused modality source a scatter targets.
#[derive(Debug, Clone, Copy)]
enum Member {
    Content,
    Semantic,
}

/// Span ids the router mints for its per-shard child spans live in a
/// disjoint high-bit range, so they can never collide with the request
/// trace's own (small, sequential) span ids when grafted into its tree.
const REMOTE_SPAN_BIT: u32 = 0x8000_0000;

/// Maintenance traces (mutation routing, stats re-merge) get ids from
/// their own namespace, far above any request trace id the service mints.
pub const MAINT_TRACE_BASE: u64 = 1 << 48;

/// Child spans each shard's `SpanLog` retains, per shard.
const SPAN_LOG_CAPACITY: usize = 512;

/// What one traced query observed of one shard during scatter/gather,
/// aggregated across the content and semantic members so exactly one
/// `shard-{i}` child span records per shard per query.
#[derive(Debug, Clone, Copy, Default)]
struct ShardProbe {
    /// The shard ran at least one member search for this query.
    searched: bool,
    /// Hits the shard returned, summed over members.
    hits: usize,
    /// Hits that survived the k-way member merges (merge contribution).
    merged: usize,
    /// Worst queue wait (submit → job start) across members.
    queue_ns: u64,
    /// Scan time, summed over members (batch scatters record an even
    /// per-query share).
    scan_ns: u64,
}

/// Per-shard observability: request/latency series plus an SLO burn
/// tracker, all labeled `{shard="i"}` so PR 5's alerting discipline fires
/// *per shard* instead of hiding a sick shard inside a cluster average.
struct ShardSeries {
    searches: Arc<Counter>,
    inline_runs: Arc<Counter>,
    mutations: Arc<Counter>,
    latency: Arc<Histogram>,
    fast_burn: Arc<FloatGauge>,
    slow_burn: Arc<FloatGauge>,
    tracker: Mutex<BurnRateTracker>,
    alerts: AlertLog,
}

/// Router-owned metrics registry (separate from the serving tier's so the
/// cluster layer stays usable without a service in front of it).
struct RouterObs {
    registry: Registry,
    epoch: std::time::Instant,
    shards: Vec<ShardSeries>,
    /// Cluster-wide generation watermark mirror (the authoritative value is
    /// the router's atomic).
    watermark: Arc<Gauge>,
}

impl RouterObs {
    fn new(n: usize, slo: SloConfig, epoch: std::time::Instant) -> RouterObs {
        let registry = Registry::new();
        let watermark = registry.gauge(
            "verifai_lake_generation_watermark",
            "Highest lake generation every shard index has applied",
            &[],
        );
        let shards = (0..n)
            .map(|i| {
                let shard = i.to_string();
                let labels: &[(&'static str, &str)] = &[("shard", &shard)];
                ShardSeries {
                    searches: registry.counter(
                        "verifai_shard_searches_total",
                        "Member searches executed by this shard",
                        labels,
                    ),
                    inline_runs: registry.counter(
                        "verifai_shard_inline_total",
                        "Searches run inline on the router thread because the shard queue was full",
                        labels,
                    ),
                    mutations: registry.counter(
                        "verifai_shard_mutations_total",
                        "Live index mutations routed to this shard",
                        labels,
                    ),
                    latency: registry.histogram(
                        "verifai_shard_latency_seconds",
                        "Per-shard member search latency",
                        labels,
                    ),
                    fast_burn: registry.float_gauge(
                        "verifai_quality_shard_slo_fast_burn",
                        "Fast-window SLO burn rate of this shard",
                        labels,
                    ),
                    slow_burn: registry.float_gauge(
                        "verifai_quality_shard_slo_slow_burn",
                        "Slow-window SLO burn rate of this shard",
                        labels,
                    ),
                    tracker: Mutex::new(BurnRateTracker::new(slo)),
                    alerts: AlertLog::new(32),
                }
            })
            .collect();
        RouterObs {
            registry,
            epoch,
            shards,
            watermark,
        }
    }
}

/// Scatter/gather retrieval over a set of [`Shard`]s.
///
/// For each member index family (content, semantic) the router fans the
/// query out to every shard's worker pool, gathers the per-shard top-k
/// lists, and k-way-merges them ([`merge_topk`]); the merged *member*
/// lists are then fused by the same [`Combiner`] the single-lake pipeline
/// uses. Merging per member **before** fusion matters: reciprocal-rank
/// fusion is rank-based, so fusing per shard and merging afterwards would
/// compute ranks over partial lists and break the identity invariant.
pub struct Router {
    shards: Vec<Shard>,
    combiner: Combiner,
    use_content: bool,
    use_semantic: bool,
    /// Embeds mutated instances' semantic entries; `None` when semantic
    /// retrieval is disabled.
    embedder: Option<TextEmbedder>,
    /// Cluster-wide generation watermark: the highest lake generation whose
    /// index consequences every owning shard has applied. Readers seeing
    /// watermark ≥ G observe all mutations up to G.
    watermark: AtomicU64,
    /// Serializes mutation application (stats re-merge must not interleave).
    mutate_lock: Mutex<()>,
    obs: RouterObs,
    clock: Arc<dyn Clock>,
    /// One bounded child-span log per shard: traced queries append their
    /// `shard-{i}` spans here, and [`Router::lookup_trace`] grafts them
    /// back into the parent trace's tree.
    span_logs: Vec<SpanLog>,
    /// Allocator for router-minted span ids (ORed with [`REMOTE_SPAN_BIT`]).
    next_remote_span: AtomicU32,
    /// Flight recorder for maintenance traces (mutation routing + stats
    /// re-merge), separate from the serving tier's request recorder.
    maint_recorder: FlightRecorder,
    /// Sequence for maintenance trace ids under [`MAINT_TRACE_BASE`].
    maint_seq: AtomicU64,
    /// The serving tier's request recorder, when one is attached —
    /// [`Router::lookup_trace`] resolves request trace ids through it.
    recorder: Mutex<Option<Arc<FlightRecorder>>>,
}

impl Router {
    /// A router over `shards` fusing member results with `combiner`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shards: Vec<Shard>,
        combiner: Combiner,
        use_content: bool,
        use_semantic: bool,
        embedder: Option<TextEmbedder>,
        generation: u64,
        slo: SloConfig,
        clock: Arc<dyn Clock>,
    ) -> Router {
        let obs = RouterObs::new(shards.len(), slo, clock.now());
        obs.watermark.set(generation as i64);
        let span_logs = (0..shards.len())
            .map(|_| SpanLog::new(SPAN_LOG_CAPACITY))
            .collect();
        Router {
            shards,
            combiner,
            use_content,
            use_semantic,
            embedder,
            watermark: AtomicU64::new(generation),
            mutate_lock: Mutex::new(()),
            obs,
            clock,
            span_logs,
            next_remote_span: AtomicU32::new(1),
            maint_recorder: FlightRecorder::new(32, 8),
            maint_seq: AtomicU64::new(1),
            recorder: Mutex::new(None),
        }
    }

    /// Number of shards behind this router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cluster-wide generation watermark: every mutation up to this
    /// lake generation is visible on all shards.
    pub fn generation_watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Route a batch of index ops (one lake mutation's consequences) to the
    /// owning shards, re-merge the global BM25 statistics for the touched
    /// modalities, and advance the watermark to `generation`.
    ///
    /// Serialized internally: concurrent calls apply one at a time, so the
    /// shared statistics every shard scores with always describe a
    /// mutation-boundary state.
    pub fn apply_ops(&self, ops: Vec<IndexOp>, generation: u64) -> MutationOutcome {
        let _guard = self.mutate_lock.lock();
        let started = self.clock.now();
        let n = self.shards.len();
        let total_ops = ops.len();
        let mut per_shard_ops = vec![0usize; n];
        let mut content_ops = 0;
        let mut embedded = 0;
        let mut touched = [false; 4];
        for op in ops {
            let slot = slot_of(op.id.kind());
            let owner = shard_of(op.id, n);
            let shard = &self.shards[owner];
            if let Some(content) = &shard.content[slot] {
                let mut index = content.write();
                if let Some(old) = &op.remove {
                    index.remove(op.id, old);
                    content_ops += 1;
                }
                if let Some(new) = &op.add {
                    index.add(op.id, new);
                    content_ops += 1;
                }
                touched[slot] = true;
            }
            if let (Some(semantic), Some(embedder)) = (&shard.semantic[slot], &self.embedder) {
                let mut index = semantic.write();
                if op.remove.is_some() {
                    index.remove(op.id);
                }
                if let Some(new) = &op.add {
                    for text in verifai::semantic_texts(op.id, new) {
                        index.add(op.id, embedder.embed(&text));
                        embedded += 1;
                    }
                }
            }
            self.obs.shards[owner].mutations.inc();
            per_shard_ops[owner] += 1;
        }
        let routed_at = self.clock.now();
        // Re-merge global BM25 statistics for every touched modality, so
        // shard-local scoring keeps using whole-corpus idf and average
        // length (the identity invariant's first mechanism).
        for (slot, touched) in touched.iter().enumerate() {
            if !touched {
                continue;
            }
            let mut merged = CorpusStats::default();
            for shard in &self.shards {
                if let Some(content) = &shard.content[slot] {
                    merged.merge(&content.read().corpus_stats());
                }
            }
            let merged = Arc::new(merged);
            for shard in &self.shards {
                if let Some(content) = &shard.content[slot] {
                    content.write().set_shared_stats(merged.clone());
                }
            }
        }
        self.watermark.fetch_max(generation, Ordering::AcqRel);
        self.obs
            .watermark
            .set(self.watermark.load(Ordering::Acquire) as i64);
        // Maintenance work leaves a trace too: a `mutation` root span with
        // one child per touched shard, then the stats re-merge, recorded
        // in the router's own flight recorder under the maintenance trace
        // id namespace.
        let remerged_at = self.clock.now();
        let trace_id = MAINT_TRACE_BASE | self.maint_seq.fetch_add(1, Ordering::Relaxed);
        let mut trace = RequestTrace::new(trace_id, generation);
        let routing_ns = ns_between(started, routed_at);
        let parent = trace.span(
            "mutation",
            routing_ns,
            total_ops,
            content_ops,
            format!("generation {generation}"),
        );
        for (i, &count) in per_shard_ops.iter().enumerate() {
            if count == 0 {
                continue;
            }
            trace.child_span(
                parent,
                format!("shard-{i}"),
                0,
                routing_ns,
                count,
                count,
                String::new(),
            );
        }
        trace.span(
            "stats-remerge",
            ns_between(routed_at, remerged_at),
            0,
            0,
            String::new(),
        );
        trace.finish("maintenance", ns_between(started, remerged_at));
        self.maint_recorder.record(trace);
        MutationOutcome {
            generation,
            content_ops,
            embedded,
        }
    }

    /// Instances owned by each shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::instances).collect()
    }

    /// Member searches each shard has executed, in shard order.
    pub fn searches_per_shard(&self) -> Vec<u64> {
        self.obs.shards.iter().map(|s| s.searches.get()).collect()
    }

    /// Scatter one member search to every shard and merge the results.
    /// When `probes` is given (the query is traced), each shard's queue
    /// wait, scan time, hit count, and merge contribution accumulate into
    /// its slot for the per-shard child span recorded by the caller.
    fn scatter_member(
        &self,
        slot: usize,
        member: Member,
        query: SourceQuery<'_>,
        k: usize,
        mut probes: Option<&mut Vec<ShardProbe>>,
    ) -> Vec<SearchHit> {
        // Semantic members without a query vector return nothing anywhere;
        // skip the fan-out entirely.
        if matches!(member, Member::Semantic) && query.vector.is_none() {
            return Vec::new();
        }
        let n = self.shards.len();
        let (tx, rx) = channel::bounded::<(usize, Vec<SearchHit>, u64, u64, CostVector)>(n);
        let text: Arc<str> = Arc::from(query.text);
        let vector: Option<Arc<Vector>> = query.vector.map(|v| Arc::new(v.clone()));
        enum Target {
            Content(ShardContent),
            Semantic(ShardSemantic),
        }
        let mut expected = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let target = match member {
                Member::Content => shard.content[slot].clone().map(Target::Content),
                Member::Semantic => shard.semantic[slot].clone().map(Target::Semantic),
            };
            let Some(target) = target else { continue };
            expected += 1;
            let tx = tx.clone();
            let text = text.clone();
            let vector = vector.clone();
            let clock = self.clock.clone();
            let submitted = clock.now();
            let job: ShardJob = Box::new(move || {
                let start = clock.now();
                // Harvest the scan's resource charges off whichever thread
                // ran the job (shard worker or, on backpressure, the router
                // thread itself) and ship them home with the hits — the
                // gather loop re-charges them into the requesting thread.
                let (hits, cost) = meter::scoped(|| match &target {
                    Target::Content(index) => index.read().search(&text, k),
                    Target::Semantic(index) => match &vector {
                        Some(v) => VectorIndex::search(&*index.read(), v, k),
                        None => Vec::new(),
                    },
                });
                let _ = tx.send((
                    i,
                    hits,
                    ns_between(submitted, start),
                    ns_between(start, clock.now()),
                    cost,
                ));
            });
            if let Err(job) = shard.try_submit(job) {
                // Bounded-queue backpressure: the query still completes, it
                // just pays for this shard's scan on the router thread.
                self.obs.shards[i].inline_runs.inc();
                job();
            }
        }
        drop(tx);
        let mut lists = vec![Vec::new(); n];
        let mut responses = 0u64;
        let mut max_queue_ns = 0u64;
        for _ in 0..expected {
            let Ok((i, hits, queue_ns, scan_ns, cost)) = rx.recv() else {
                break;
            };
            meter::charge_cost(&cost);
            responses += 1;
            max_queue_ns = max_queue_ns.max(queue_ns);
            let series = &self.obs.shards[i];
            series.searches.inc();
            series
                .latency
                .record(std::time::Duration::from_nanos(scan_ns));
            if let Some(probes) = probes.as_deref_mut() {
                let probe = &mut probes[i];
                probe.searched = true;
                probe.hits += hits.len();
                probe.queue_ns = probe.queue_ns.max(queue_ns);
                probe.scan_ns += scan_ns;
            }
            lists[i] = hits;
        }
        // Queue wait is the slowest shard's (waits overlap); fanout is the
        // responses actually merged.
        meter::charge_queue_ns(max_queue_ns);
        meter::charge_shard_fanout(responses);
        let merged = merge_topk(&lists, k);
        if let Some(probes) = probes {
            credit_merge_contributions(&merged, &lists, probes);
        }
        merged
    }

    /// Scatter one member's whole query batch: one job per shard carries
    /// every query, so a flat semantic shard amortizes a single blocked
    /// sweep of its code array across the batch (and a content shard takes
    /// its read lock once). Returns the per-query merged lists in `queries`
    /// order, identical to per-query [`Router::scatter_member`] calls.
    fn scatter_member_batch(
        &self,
        slot: usize,
        member: Member,
        queries: &[SourceQuery<'_>],
        k: usize,
        mut probes: Option<&mut Vec<Vec<ShardProbe>>>,
    ) -> Vec<Vec<SearchHit>> {
        let batch = queries.len();
        let has_vector: Arc<Vec<bool>> =
            Arc::new(queries.iter().map(|q| q.vector.is_some()).collect());
        let dense: Arc<Vec<Vector>> =
            Arc::new(queries.iter().filter_map(|q| q.vector.cloned()).collect());
        if matches!(member, Member::Semantic) && dense.is_empty() {
            return vec![Vec::new(); batch];
        }
        let texts: Arc<Vec<String>> =
            Arc::new(queries.iter().map(|q| q.text.to_string()).collect());
        let n = self.shards.len();
        let (tx, rx) = channel::bounded::<(usize, Vec<Vec<SearchHit>>, u64, u64, CostVector)>(n);
        enum Target {
            Content(ShardContent),
            Semantic(ShardSemantic),
        }
        let mut expected = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let target = match member {
                Member::Content => shard.content[slot].clone().map(Target::Content),
                Member::Semantic => shard.semantic[slot].clone().map(Target::Semantic),
            };
            let Some(target) = target else { continue };
            expected += 1;
            let tx = tx.clone();
            let texts = texts.clone();
            let dense = dense.clone();
            let has_vector = has_vector.clone();
            let clock = self.clock.clone();
            let submitted = clock.now();
            let job: ShardJob = Box::new(move || {
                let start = clock.now();
                // Same harvest-and-ship as `scatter_member`: the whole
                // batch's scan cost rides home in one vector and is split
                // per request by the caller's batch attribution.
                let (per_query, cost) = meter::scoped(|| -> Vec<Vec<SearchHit>> {
                    match &target {
                        Target::Content(index) => {
                            let index = index.read();
                            texts.iter().map(|t| index.search(t, k)).collect()
                        }
                        Target::Semantic(index) => {
                            let mut results =
                                VectorIndex::search_batch(&*index.read(), &dense, k).into_iter();
                            has_vector
                                .iter()
                                .map(|&has| {
                                    if has {
                                        results.next().unwrap_or_default()
                                    } else {
                                        Vec::new()
                                    }
                                })
                                .collect()
                        }
                    }
                });
                let _ = tx.send((
                    i,
                    per_query,
                    ns_between(submitted, start),
                    ns_between(start, clock.now()),
                    cost,
                ));
            });
            if let Err(job) = shard.try_submit(job) {
                self.obs.shards[i].inline_runs.inc();
                job();
            }
        }
        drop(tx);
        let mut per_shard: Vec<Vec<Vec<SearchHit>>> = vec![Vec::new(); n];
        let mut responses = 0u64;
        let mut max_queue_ns = 0u64;
        for _ in 0..expected {
            let Ok((i, per_query, queue_ns, scan_ns, cost)) = rx.recv() else {
                break;
            };
            meter::charge_cost(&cost);
            responses += 1;
            max_queue_ns = max_queue_ns.max(queue_ns);
            let series = &self.obs.shards[i];
            series.searches.add(batch as u64);
            series
                .latency
                .record(std::time::Duration::from_nanos(scan_ns));
            if let Some(probes) = probes.as_deref_mut() {
                // Queue wait is shared by the whole batch; scan time is
                // credited as an even per-query share, mirroring how
                // `discover_batch` splits its stage wall times.
                for (qi, hits) in per_query.iter().enumerate() {
                    let probe = &mut probes[qi][i];
                    probe.searched = true;
                    probe.hits += hits.len();
                    probe.queue_ns = probe.queue_ns.max(queue_ns);
                    probe.scan_ns += scan_ns / batch as u64;
                }
            }
            per_shard[i] = per_query;
        }
        // Charged `batch` times so an even per-request split leaves each
        // request seeing the slowest shard's wait and the full fanout —
        // the same semantics the single-query path records.
        meter::charge_queue_ns(max_queue_ns * batch as u64);
        meter::charge_shard_fanout(responses * batch as u64);
        (0..batch)
            .map(|qi| {
                let lists: Vec<Vec<SearchHit>> = per_shard
                    .iter()
                    .map(|s| s.get(qi).cloned().unwrap_or_default())
                    .collect();
                let merged = merge_topk(&lists, k);
                if let Some(probes) = probes.as_deref_mut() {
                    credit_merge_contributions(&merged, &lists, &mut probes[qi]);
                }
                merged
            })
            .collect()
    }

    /// Scatter/gather retrieval for one modality: the routed equivalent of
    /// the single-lake fused source's `search`.
    pub fn search(&self, kind: InstanceKind, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        let slot = slot_of(kind);
        let mut probes = query
            .ctx
            .is_live()
            .then(|| vec![ShardProbe::default(); self.shards.len()]);
        let mut lists: Vec<Vec<SearchHit>> = Vec::with_capacity(2);
        if self.use_content {
            let merged = self.scatter_member(slot, Member::Content, query, k, probes.as_mut());
            if !merged.is_empty() {
                lists.push(merged);
            }
        }
        if self.use_semantic {
            let merged = self.scatter_member(slot, Member::Semantic, query, k, probes.as_mut());
            if !merged.is_empty() {
                lists.push(merged);
            }
        }
        if let Some(probes) = probes {
            self.record_shard_spans(query.ctx, k, &probes, 1);
        }
        self.combiner.combine(&lists, k)
    }

    /// Batched scatter/gather for one modality: each member fans the whole
    /// batch out once (one job per shard), then the per-query member lists
    /// fuse exactly as [`Router::search`] would. Results are identical to
    /// per-query `search` calls.
    pub fn search_batch(
        &self,
        kind: InstanceKind,
        queries: &[SourceQuery<'_>],
        k: usize,
    ) -> Vec<Vec<SearchHit>> {
        let slot = slot_of(kind);
        let n = self.shards.len();
        let mut probes = queries
            .iter()
            .any(|q| q.ctx.is_live())
            .then(|| vec![vec![ShardProbe::default(); n]; queries.len()]);
        let content = self
            .use_content
            .then(|| self.scatter_member_batch(slot, Member::Content, queries, k, probes.as_mut()));
        let semantic = self.use_semantic.then(|| {
            self.scatter_member_batch(slot, Member::Semantic, queries, k, probes.as_mut())
        });
        if let Some(probes) = &probes {
            for (query, probe_row) in queries.iter().zip(probes) {
                if query.ctx.is_live() {
                    self.record_shard_spans(query.ctx, k, probe_row, queries.len());
                }
            }
        }
        (0..queries.len())
            .map(|qi| {
                let mut lists: Vec<Vec<SearchHit>> = Vec::with_capacity(2);
                for member in [&content, &semantic].into_iter().flatten() {
                    if !member[qi].is_empty() {
                        lists.push(member[qi].clone());
                    }
                }
                self.combiner.combine(&lists, k)
            })
            .collect()
    }

    /// Record one `shard-{i}` child span per probed shard into that
    /// shard's span log, under `ctx`'s trace and parent span. `co_batch`
    /// is how many queries shared the scatter (1 for unbatched).
    fn record_shard_spans(
        &self,
        ctx: SpanContext,
        k: usize,
        probes: &[ShardProbe],
        co_batch: usize,
    ) {
        for (i, probe) in probes.iter().enumerate() {
            if !probe.searched {
                continue;
            }
            let span_id = REMOTE_SPAN_BIT | self.next_remote_span.fetch_add(1, Ordering::Relaxed);
            let mut note = format!(
                "k {k} merged {} queue {}us scan {}us",
                probe.merged,
                probe.queue_ns / 1_000,
                probe.scan_ns / 1_000
            );
            if co_batch > 1 {
                note.push_str(&format!(" batch of {co_batch}"));
            }
            self.span_logs[i].record(
                ctx.trace_id,
                SpanEvent {
                    stage: format!("shard-{i}").into(),
                    span_id,
                    parent_id: ctx.span_id,
                    // Relative to the parent: the queue wait offsets the
                    // scan, so Perfetto shows wait vs. work per shard.
                    start_ns: probe.queue_ns,
                    duration_ns: probe.scan_ns,
                    candidates_in: probe.hits,
                    candidates_out: probe.merged,
                    note,
                },
            );
        }
    }

    /// Stitch the full distributed span tree for `trace_id`: the parent
    /// trace (from the attached service recorder, falling back to the
    /// router's maintenance recorder) with every shard's child spans
    /// grafted in. `None` if no recorder retained the trace.
    pub fn lookup_trace(&self, trace_id: TraceId) -> Option<RequestTrace> {
        let parent = self
            .recorder
            .lock()
            .as_ref()
            .and_then(|r| r.lookup(trace_id))
            .or_else(|| self.maint_recorder.lookup(trace_id))?;
        let mut tree = (*parent).clone();
        let mut children: Vec<SpanEvent> = Vec::new();
        for log in &self.span_logs {
            children.extend(log.for_trace(trace_id));
        }
        tree.graft(children);
        Some(tree)
    }

    /// Attach the serving tier's request recorder so
    /// [`Router::lookup_trace`] can resolve request trace ids.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.recorder.lock() = Some(recorder);
    }

    /// The router's maintenance-trace recorder (mutation routing, stats
    /// re-merge work recorded by [`Router::apply_ops`]).
    pub fn maintenance_recorder(&self) -> &FlightRecorder {
        &self.maint_recorder
    }

    /// Evaluate every shard's SLO burn (multi-window, against the per-shard
    /// latency series), update the burn gauges, and fire/resolve per-shard
    /// [`AlertKind::SloBurn`] alerts. Call at quality ticks or before
    /// snapshots.
    pub fn assess_slo(&self) {
        let now_ns = ns_between(self.obs.epoch, self.clock.now());
        for (i, series) in self.obs.shards.iter().enumerate() {
            let snapshot = series.latency.snapshot();
            let mut tracker = series.tracker.lock();
            let threshold = tracker.config().threshold;
            let assessment =
                tracker.observe(now_ns, snapshot.count(), snapshot.count_over(threshold));
            drop(tracker);
            series.fast_burn.set(assessment.fast_burn);
            series.slow_burn.set(assessment.slow_burn);
            if assessment.firing {
                series.alerts.fire(Alert {
                    kind: AlertKind::SloBurn,
                    severity: Severity::Critical,
                    message: format!(
                        "shard {i}: fast burn {:.1}, slow burn {:.1}",
                        assessment.fast_burn, assessment.slow_burn
                    ),
                    window: 0,
                    at_ns: now_ns,
                });
            } else {
                series.alerts.resolve(AlertKind::SloBurn);
            }
        }
    }

    /// Currently-firing per-shard alerts as `(shard, alert)` pairs.
    pub fn active_alerts(&self) -> Vec<(usize, Alert)> {
        self.obs
            .shards
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.alerts.active().into_iter().map(move |a| (i, a)))
            .collect()
    }

    /// Snapshot the router's per-shard metric series (after refreshing the
    /// SLO burn gauges). Render with [`verifai_obs::render_prometheus`] or
    /// [`verifai_obs::render_json`] — series carry `{shard="i"}` labels.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.assess_slo();
        self.obs.registry.snapshot()
    }
}

/// Credit each shard's contribution to a k-way member merge: how many of
/// the merged top-k came from that shard's list.
fn credit_merge_contributions(
    merged: &[SearchHit],
    lists: &[Vec<SearchHit>],
    probes: &mut [ShardProbe],
) {
    for (i, list) in lists.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        probes[i].merged += merged
            .iter()
            .filter(|hit| list.iter().any(|own| own.id == hit.id))
            .count();
    }
}

/// The staged pipeline's modality slot for `kind` (same mapping as
/// `StagedPipeline`: tuples, tables, texts, kg).
fn slot_of(kind: InstanceKind) -> usize {
    match kind {
        InstanceKind::Tuple => 0,
        InstanceKind::Table => 1,
        InstanceKind::Text => 2,
        InstanceKind::Kg => 3,
    }
}

/// One modality of a [`Router`] exposed as an [`EvidenceSource`]: the
/// staged pipeline retrieves through this exactly as it would through the
/// single-lake fused index source.
pub struct RoutedSource {
    router: Arc<Router>,
    kind: InstanceKind,
}

impl RoutedSource {
    /// The `kind` modality of `router` as a pipeline source.
    pub fn new(router: Arc<Router>, kind: InstanceKind) -> RoutedSource {
        RoutedSource { router, kind }
    }
}

impl EvidenceSource for RoutedSource {
    fn name(&self) -> &'static str {
        "routed"
    }

    fn search(&self, query: SourceQuery<'_>, k: usize) -> Vec<SearchHit> {
        self.router.search(self.kind, query, k)
    }

    fn search_batch(&self, queries: &[SourceQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        self.router.search_batch(self.kind, queries, k)
    }
}
