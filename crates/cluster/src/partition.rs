//! Deterministic hash partitioning of lake instances across shards.

use verifai_embed::hashing::splitmix64;
use verifai_lake::InstanceId;

/// The shard owning `id` in an `shards`-way partition.
///
/// The placement is a pure function of the id — no registry, no rebalance
/// state — so every component (builders, routers, tests) agrees on
/// ownership without coordination. Partitioning is by *id*, not by entry:
/// a text document's sentence chunks all carry the document's id and
/// therefore co-locate, which keeps duplicate-id hits intact under
/// scatter/gather.
pub fn shard_of(id: InstanceId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Tag the modality into the high bits so Tuple(7) and Table(7) hash
    // independently, then mix through splitmix64 for uniform spread.
    let (tag, raw) = match id {
        InstanceId::Tuple(t) => (0u64, t),
        InstanceId::Table(t) => (1, t),
        InstanceId::Text(d) => (2, d),
        InstanceId::Kg(k) => (3, k),
    };
    (splitmix64(raw ^ (tag << 61) ^ 0x5eed_c1d5) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        for i in 0..100 {
            assert_eq!(shard_of(InstanceId::Tuple(i), 1), 0);
        }
    }

    #[test]
    fn placement_is_stable_and_in_range() {
        for shards in 1..=8 {
            for i in 0..200u64 {
                let id = InstanceId::Text(i);
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "placement must be pure");
            }
        }
    }

    #[test]
    fn modalities_hash_independently() {
        // The same raw id in different modalities should not always land
        // on the same shard (they are distinct instances).
        let differs = (0..64u64)
            .any(|i| shard_of(InstanceId::Tuple(i), 4) != shard_of(InstanceId::Table(i), 4));
        assert!(differs);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[shard_of(InstanceId::Tuple(i), 4)] += 1;
        }
        for &c in &counts {
            assert!((600..=1400).contains(&c), "skewed partition: {counts:?}");
        }
    }
}
