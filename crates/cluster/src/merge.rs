//! Bounded k-way merge of per-shard top-k lists.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use verifai_index::SearchHit;

/// One cursor position in the k-way merge: the head hit of list `list` at
/// offset `pos`. Max-heap order pops the *best* hit first — highest score,
/// then smallest id (the `sort_hits` total order), then lowest list index
/// so exact duplicates pop deterministically.
struct Cursor {
    score: f64,
    id: verifai_lake::InstanceId,
    list: usize,
    pos: usize,
}

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cursor {}
impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cursor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
            .then_with(|| other.list.cmp(&self.list))
    }
}

/// Merge per-shard ranked lists into the global top-`k`.
///
/// Each input list must be sorted by the [`verifai_index::hit::sort_hits`]
/// total order (score descending, id ascending) — which every index's
/// `search` guarantees. The merge is a classic bounded k-way heap: one
/// cursor per list, so the heap never exceeds `lists.len()` entries and the
/// cost is `O(k · log s)` for `s` shards, independent of list lengths.
///
/// When every shard reports its *local* top-k over a disjoint partition,
/// the merged result is exactly the *global* top-k — the property test in
/// this module is the proof obligation for the cluster's headline
/// invariant.
pub fn merge_topk(lists: &[Vec<SearchHit>], k: usize) -> Vec<SearchHit> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Cursor> = BinaryHeap::with_capacity(lists.len());
    for (list, hits) in lists.iter().enumerate() {
        if let Some(first) = hits.first() {
            heap.push(Cursor {
                score: first.score,
                id: first.id,
                list,
                pos: 0,
            });
        }
    }
    let mut merged = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while let Some(cursor) = heap.pop() {
        let hits = &lists[cursor.list];
        merged.push(hits[cursor.pos]);
        if merged.len() == k {
            break;
        }
        if let Some(next) = hits.get(cursor.pos + 1) {
            heap.push(Cursor {
                score: next.score,
                id: next.id,
                list: cursor.list,
                pos: cursor.pos + 1,
            });
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_index::hit::sort_hits;
    use verifai_lake::InstanceId;

    fn hit(id: u64, score: f64) -> SearchHit {
        SearchHit::new(InstanceId::Text(id), score)
    }

    #[test]
    fn merges_sorted_lists_in_total_order() {
        let a = vec![hit(1, 0.9), hit(3, 0.5)];
        let b = vec![hit(2, 0.7), hit(4, 0.5)];
        let merged = merge_topk(&[a, b], 3);
        assert_eq!(merged, vec![hit(1, 0.9), hit(2, 0.7), hit(3, 0.5)]);
    }

    #[test]
    fn ties_break_on_id_ascending() {
        let a = vec![hit(5, 1.0)];
        let b = vec![hit(2, 1.0)];
        let c = vec![hit(9, 1.0)];
        let merged = merge_topk(&[a, b, c], 2);
        assert_eq!(merged, vec![hit(2, 1.0), hit(5, 1.0)]);
    }

    #[test]
    fn empty_and_zero_k() {
        assert!(merge_topk(&[], 5).is_empty());
        assert!(merge_topk(&[vec![], vec![]], 5).is_empty());
        assert!(merge_topk(&[vec![hit(1, 1.0)]], 0).is_empty());
    }

    #[test]
    fn k_larger_than_total_returns_all() {
        let merged = merge_topk(&[vec![hit(1, 0.3)], vec![hit(2, 0.8)]], 10);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].id, InstanceId::Text(2));
    }

    /// The satellite property: partition a random scored corpus (with
    /// deliberate duplicate scores) across 1..8 shards, take each shard's
    /// local top-k, and the merge must equal the global top-k.
    mod prop {
        use super::*;
        use crate::shard_of;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn merged_shard_topk_equals_global_topk(
                // Scores from a tiny alphabet to force cross-shard ties.
                entries in proptest::collection::vec((0u64..500, 0u8..8), 0..120),
                shards in 1usize..9,
                k in 0usize..24,
            ) {
                let corpus: Vec<SearchHit> = entries
                    .iter()
                    .map(|&(id, s)| hit(id, s as f64 / 4.0))
                    .collect();
                // Global reference: sort everything, truncate to k.
                let mut global = corpus.clone();
                sort_hits(&mut global);
                global.truncate(k);
                // Per-shard lists: partition by id, sort, truncate to k.
                let mut per_shard: Vec<Vec<SearchHit>> = vec![Vec::new(); shards];
                for h in &corpus {
                    per_shard[shard_of(h.id, shards)].push(*h);
                }
                for list in &mut per_shard {
                    sort_hits(list);
                    list.truncate(k);
                }
                let merged = merge_topk(&per_shard, k);
                // Same multiset in the same score order. Entries with equal
                // (score, id) are indistinguishable values, so plain Vec
                // equality is exactly multiset-plus-order equality here.
                prop_assert_eq!(merged, global);
            }
        }
    }
}
