//! One shard: its slice of the partitioned indexes plus a worker pool.

use std::sync::Arc;

use parking_lot::RwLock;
use verifai::exec::WorkerPool;
use verifai_index::{AnyVectorIndex, SegmentedInvertedIndex, VectorIndex};

/// A unit of shard work: a boxed search closure the router scatters.
pub(crate) type ShardJob = Box<dyn FnOnce() + Send + 'static>;

/// A shard's content index handle: shared and lockable, so the router can
/// apply live mutations while search jobs read concurrently.
pub(crate) type ShardContent = Arc<RwLock<SegmentedInvertedIndex>>;
/// A shard's semantic index handle.
pub(crate) type ShardSemantic = Arc<RwLock<AnyVectorIndex>>;

/// One partition of the lake: per-modality content (BM25) and semantic
/// indexes over the instances this shard owns, plus the worker pool that
/// executes scattered searches. Indexes are `Arc<RwLock>`-shared: search
/// jobs take read locks off the router thread, and the router's mutation
/// path takes short write locks to keep the shard live.
pub struct Shard {
    /// Modality slot (tuples, tables, texts, kg) → content index.
    pub(crate) content: [Option<ShardContent>; 4],
    /// Modality slot → semantic index.
    pub(crate) semantic: [Option<ShardSemantic>; 4],
    pool: WorkerPool<ShardJob>,
}

impl Shard {
    /// Assemble a shard over its built indexes with `workers` pool threads
    /// and a bounded job queue of `queue` entries.
    pub(crate) fn new(
        content: [Option<ShardContent>; 4],
        semantic: [Option<ShardSemantic>; 4],
        workers: usize,
        queue: usize,
    ) -> Shard {
        Shard {
            content,
            semantic,
            pool: WorkerPool::new(workers.max(1), Some(queue.max(1)), |_rx, job: ShardJob| {
                job()
            }),
        }
    }

    /// Submit a search job to this shard's pool; on a full queue the job is
    /// handed back for the caller to run inline (backpressure, not loss).
    pub(crate) fn try_submit(&self, job: ShardJob) -> Result<(), ShardJob> {
        self.pool.try_submit(job)
    }

    /// Number of live instances this shard owns (max across index families —
    /// content and semantic cover the same instances when both are on).
    /// Recomputed per call, since mutations move the number.
    pub fn instances(&self) -> usize {
        let content: usize = self
            .content
            .iter()
            .flatten()
            .map(|idx| idx.read().len())
            .sum();
        let semantic: usize = self
            .semantic
            .iter()
            .flatten()
            .map(|idx| VectorIndex::len(&*idx.read()))
            .sum();
        content.max(semantic)
    }
}
