//! One shard: its slice of the partitioned indexes plus a worker pool.

use std::sync::Arc;

use verifai::exec::WorkerPool;
use verifai_index::{FlatIndex, InvertedIndex};

/// A unit of shard work: a boxed search closure the router scatters.
pub(crate) type ShardJob = Box<dyn FnOnce() + Send + 'static>;

/// One partition of the lake: per-modality content (BM25) and semantic
/// (exact flat) indexes over the instances this shard owns, plus the worker
/// pool that executes scattered searches. Indexes are `Arc`-shared so
/// search jobs borrow nothing from the router thread.
pub struct Shard {
    /// Modality slot (tuples, tables, texts, kg) → content index.
    pub(crate) content: [Option<Arc<InvertedIndex>>; 4],
    /// Modality slot → semantic index.
    pub(crate) semantic: [Option<Arc<FlatIndex>>; 4],
    pool: WorkerPool<ShardJob>,
    instances: usize,
}

impl Shard {
    /// Assemble a shard over its built indexes with `workers` pool threads
    /// and a bounded job queue of `queue` entries.
    pub(crate) fn new(
        content: [Option<Arc<InvertedIndex>>; 4],
        semantic: [Option<Arc<FlatIndex>>; 4],
        workers: usize,
        queue: usize,
    ) -> Shard {
        let instances = content
            .iter()
            .flatten()
            .map(|idx| idx.len())
            .sum::<usize>()
            .max(
                semantic
                    .iter()
                    .flatten()
                    .map(|idx| {
                        use verifai_index::VectorIndex;
                        idx.len()
                    })
                    .sum(),
            );
        Shard {
            content,
            semantic,
            pool: WorkerPool::new(workers.max(1), Some(queue.max(1)), |_rx, job: ShardJob| {
                job()
            }),
            instances,
        }
    }

    /// Submit a search job to this shard's pool; on a full queue the job is
    /// handed back for the caller to run inline (backpressure, not loss).
    pub(crate) fn try_submit(&self, job: ShardJob) -> Result<(), ShardJob> {
        self.pool.try_submit(job)
    }

    /// Number of instances this shard owns (max across index families —
    /// content and semantic cover the same instances when both are on).
    pub fn instances(&self) -> usize {
        self.instances
    }
}
