//! # verifai-cluster — sharded, scatter/gather serving tier
//!
//! Partitions a generated lake into N shards (deterministic hash
//! placement, [`shard_of`]), builds per-shard content + semantic indexes,
//! and fronts them with a [`Router`] that scatters each query to every
//! shard, gathers per-shard top-k, k-way-merges ([`merge_topk`]) and fuses
//! exactly as the single-lake pipeline would.
//!
//! The headline invariant: for any shard count N, the routed system with
//! the **exact (flat) semantic backend** returns *identical* results to a
//! single-lake build (same hits, same order under the total tie-break).
//! Three mechanisms carry it:
//!
//! 1. **Global BM25 statistics** — per-shard corpus stats are merged and
//!    re-injected ([`verifai_index::CorpusStats`]) so shard-local scoring
//!    uses whole-corpus idf and average length.
//! 2. **Exact semantic backend** — byte-identity holds under the flat
//!    index; with HNSW (per-shard graphs, own insertion histories) the
//!    invariant weakens to recall-equivalence, which the identity suite
//!    asserts separately.
//! 3. **Member-level merge before fusion** — rank fusion is not
//!    distributive over shards, so the router merges each index family
//!    globally first, then fuses.
//!
//! The tier is **live**: [`ClusterBuild::apply`] routes streaming lake
//! mutations to the owning shard's indexes ([`shard_of`]), re-merges the
//! global statistics, and advances a cluster-wide generation watermark
//! ([`Router::generation_watermark`]).
#![warn(missing_docs)]

mod build;
mod merge;
mod partition;
mod router;
mod shard;

pub use build::{build_cluster, build_cluster_with_clock, ClusterBuild, ClusterConfig};
pub use merge::merge_topk;
pub use partition::shard_of;
pub use router::{RoutedSource, Router, MAINT_TRACE_BASE};
pub use shard::Shard;
