//! # verifai-cluster — sharded, scatter/gather serving tier
//!
//! Partitions a generated lake into N shards (deterministic hash
//! placement, [`shard_of`]), builds per-shard content + semantic indexes,
//! and fronts them with a [`Router`] that scatters each query to every
//! shard, gathers per-shard top-k, k-way-merges ([`merge_topk`]) and fuses
//! exactly as the single-lake pipeline would.
//!
//! The headline invariant: for any shard count N, the routed system
//! returns *identical* results to a single-lake build (same hits, same
//! order under the total tie-break). Three mechanisms carry it:
//!
//! 1. **Global BM25 statistics** — per-shard corpus stats are merged and
//!    re-injected ([`verifai_index::CorpusStats`]) so shard-local scoring
//!    uses whole-corpus idf and average length.
//! 2. **Exact semantic backend** — shards use the flat index, not HNSW
//!    (whose results depend on insertion history).
//! 3. **Member-level merge before fusion** — rank fusion is not
//!    distributive over shards, so the router merges each index family
//!    globally first, then fuses.
#![warn(missing_docs)]

mod build;
mod merge;
mod partition;
mod router;
mod shard;

pub use build::{build_cluster, build_cluster_with_clock, ClusterBuild, ClusterConfig};
pub use merge::merge_topk;
pub use partition::shard_of;
pub use router::{RoutedSource, Router};
pub use shard::Shard;
