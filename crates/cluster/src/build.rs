//! Partition a generated lake into shards and assemble the routed system.

use std::sync::Arc;

use parking_lot::RwLock;
use verifai::corpus::{embedder_for, modality_corpus, ModalityCorpus};
use verifai::{BuildStats, SemanticBackend, VerifAi, VerifAiConfig};
use verifai_datagen::GeneratedLake;
use verifai_index::{
    AnyVectorIndex, Bm25Params, Combiner, CorpusStats, EvidenceSource, FlatIndex, HnswConfig,
    HnswIndex, SegmentedInvertedIndex, VectorIndex,
};
use verifai_lake::InstanceKind;
use verifai_obs::{ns_between, Clock, SloConfig, SystemClock};
use verifai_text::Analyzer;

use crate::partition::shard_of;
use crate::router::{RoutedSource, Router};
use crate::shard::{Shard, ShardContent, ShardSemantic};

/// Shape of the in-process cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of shards the lake is partitioned into (min 1).
    pub shards: usize,
    /// Worker threads per shard pool.
    pub shard_workers: usize,
    /// Bounded job-queue depth per shard pool; overflow runs inline on the
    /// router thread (backpressure, not loss).
    pub shard_queue: usize,
    /// Per-shard latency SLO driving the `{shard}`-labeled burn alerts.
    pub slo: SloConfig,
}

impl ClusterConfig {
    /// An `n`-shard cluster with one worker and a 64-deep queue per shard.
    pub fn with_shards(n: usize) -> ClusterConfig {
        ClusterConfig {
            shards: n.max(1),
            shard_workers: 1,
            shard_queue: 64,
            slo: SloConfig::default(),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig::with_shards(4)
    }
}

/// A built cluster: the assembled [`VerifAi`] system retrieving through the
/// router, plus the router itself for shard-level introspection and live
/// mutation routing ([`ClusterBuild::apply`]).
pub struct ClusterBuild {
    /// The system; drop-in for a single-lake build everywhere (including
    /// behind `verifai_service::VerificationService`).
    pub system: VerifAi,
    /// The scatter/gather front end (shared with the system's sources).
    pub router: Arc<Router>,
}

impl ClusterBuild {
    /// Apply one streaming mutation to the sharded system: change the lake,
    /// route every affected instance's index ops to the owning shard
    /// ([`shard_of`]), re-merge the global BM25 statistics, and advance the
    /// cluster's generation watermark to the lake's new generation.
    pub fn apply(
        &mut self,
        mutation: verifai::LakeMutation,
    ) -> Result<verifai::MutationOutcome, verifai::MutationError> {
        let lake = self.system.routed_lake_mut()?;
        let ops = verifai::mutate_lake(lake, mutation)?;
        let generation = self.system.lake().generation();
        Ok(self.router.apply_ops(ops, generation))
    }
}

/// Build a sharded system over `generated`: enumerate the corpus exactly as
/// [`VerifAi::build`] does, hash-partition every instance with
/// [`shard_of`], build per-shard content + semantic indexes in parallel,
/// install the merged [`CorpusStats`] so shard-local BM25 scores globally,
/// and assemble a [`VerifAi`] whose four modality sources scatter/gather
/// through a [`Router`].
///
/// The semantic backend follows `config.semantic_backend`. With
/// [`SemanticBackend::Flat`] (exact scan) the routed results are
/// *byte-identical* to a single-lake flat reference. With HNSW the per-shard
/// graphs have their own insertion histories, so sharded results match the
/// single-lake build only in recall terms — prefer flat when asserting
/// identity, HNSW when throughput matters.
pub fn build_cluster(
    generated: GeneratedLake,
    config: VerifAiConfig,
    cluster: ClusterConfig,
) -> ClusterBuild {
    build_cluster_with_clock(generated, config, cluster, Arc::new(SystemClock))
}

/// [`build_cluster`] with an explicit clock for build timings, stage
/// timings, and the router's SLO evaluation.
pub fn build_cluster_with_clock(
    generated: GeneratedLake,
    config: VerifAiConfig,
    cluster: ClusterConfig,
    clock: Arc<dyn Clock>,
) -> ClusterBuild {
    let build_start = clock.now();
    let n = cluster.shards.max(1);
    let threads = if config.build_threads == 0 {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    } else {
        config.build_threads
    };
    let embedder = embedder_for(&config);
    let want_semantic = config.use_semantic_index;
    let index_start = clock.now();

    // Enumerate each modality once (identical to the single-lake build) and
    // partition its entries by instance id. Partitioning is stable: within
    // a shard, entries keep lake order, so per-shard indexes insert in the
    // same relative order the single-lake index would.
    let lake = &generated.lake;
    let mut partitions: Vec<ModalityCorpus> = Vec::with_capacity(4 * n);
    for modality in 0..4 {
        let corpus = modality_corpus(lake, modality, want_semantic);
        let mut per_shard: Vec<ModalityCorpus> = vec![ModalityCorpus::default(); n];
        for (id, text) in corpus.content {
            per_shard[shard_of(id, n)].content.push((id, text));
        }
        for (id, text) in corpus.semantic {
            per_shard[shard_of(id, n)].semantic.push((id, text));
        }
        partitions.extend(per_shard);
    }
    let embedded: usize = partitions.iter().map(|p| p.semantic.len()).sum();

    // Build every (modality, shard) index pair in parallel.
    type BuiltPair = (SegmentedInvertedIndex, Option<AnyVectorIndex>);
    let backend = config.semantic_backend;
    let quantized = config.quantized;
    let rescore_factor = config.rescore_factor;
    let seed = config.seed ^ 0x45a1;
    let mut built: Vec<Option<BuiltPair>> = (0..4 * n).map(|_| None).collect();
    {
        let embedder = &embedder;
        let jobs: Vec<Box<dyn FnOnce() + Send>> = built
            .iter_mut()
            .zip(partitions)
            .map(|(slot, corpus)| {
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let mut content =
                        SegmentedInvertedIndex::new(Analyzer::standard(), Bm25Params::default());
                    for (id, text) in &corpus.content {
                        content.add(*id, text);
                    }
                    let semantic = want_semantic.then(|| {
                        let mut index = match backend {
                            SemanticBackend::Hnsw => {
                                AnyVectorIndex::Hnsw(HnswIndex::new(HnswConfig {
                                    seed,
                                    ..HnswConfig::default()
                                }))
                            }
                            SemanticBackend::Flat if quantized => {
                                AnyVectorIndex::Flat(FlatIndex::new_quantized(rescore_factor))
                            }
                            SemanticBackend::Flat => AnyVectorIndex::Flat(FlatIndex::new()),
                        };
                        for (id, text) in &corpus.semantic {
                            index.add(*id, embedder.embed(text));
                        }
                        index
                    });
                    *slot = Some((content, semantic));
                });
                job
            })
            .collect();
        verifai::exec::run_scoped(threads, jobs);
    }
    let mut built: Vec<BuiltPair> = built
        .into_iter()
        .map(|slot| slot.expect("every shard job filled its slot"))
        .collect();

    // Merge per-modality corpus statistics and install them on every shard
    // index: shard-local BM25 then scores with global idf and average
    // length, making per-shard scores exactly the single-index scores.
    for modality in 0..4 {
        let mut merged = CorpusStats::default();
        for s in 0..n {
            merged.merge(&built[modality * n + s].0.corpus_stats());
        }
        let merged = Arc::new(merged);
        for s in 0..n {
            built[modality * n + s].0.set_shared_stats(merged.clone());
        }
    }

    // Regroup per shard and stand up the worker pools.
    let mut built: Vec<Option<BuiltPair>> = built.into_iter().map(Some).collect();
    let shards: Vec<Shard> = (0..n)
        .map(|s| {
            let mut content: [Option<ShardContent>; 4] = Default::default();
            let mut semantic: [Option<ShardSemantic>; 4] = Default::default();
            for (modality, (c_slot, s_slot)) in
                content.iter_mut().zip(semantic.iter_mut()).enumerate()
            {
                let (c, f) = built[modality * n + s]
                    .take()
                    .expect("each pair taken once");
                *c_slot = config.use_content_index.then(|| Arc::new(RwLock::new(c)));
                *s_slot = f.map(|i| Arc::new(RwLock::new(i)));
            }
            Shard::new(
                content,
                semantic,
                cluster.shard_workers,
                cluster.shard_queue,
            )
        })
        .collect();
    let index_ns = ns_between(index_start, clock.now());

    let router = Arc::new(Router::new(
        shards,
        Combiner::new(config.fusion),
        config.use_content_index,
        want_semantic,
        want_semantic.then_some(embedder),
        generated.lake.generation(),
        cluster.slo,
        clock.clone(),
    ));
    let sources: [Box<dyn EvidenceSource>; 4] = [
        Box::new(RoutedSource::new(router.clone(), InstanceKind::Tuple)),
        Box::new(RoutedSource::new(router.clone(), InstanceKind::Table)),
        Box::new(RoutedSource::new(router.clone(), InstanceKind::Text)),
        Box::new(RoutedSource::new(router.clone(), InstanceKind::Kg)),
    ];
    let build_stats = BuildStats {
        wall_ns: ns_between(build_start, clock.now()),
        index_ns,
        embedded,
        threads,
    };
    let system = VerifAi::with_sources_and_clock(generated, config, sources, build_stats, clock);
    ClusterBuild { system, router }
}
