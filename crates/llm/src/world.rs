//! The world model behind the simulated LLM.
//!
//! A real LLM's parametric knowledge is a lossy compression of its training
//! corpus. [`WorldModel`] makes that explicit: a ground-truth fact store
//! `(entity, attribute) → value` plus per-attribute value domains. The model
//! layer ([`crate::SimLlm`]) consults it through a corruption channel — each
//! fact is consistently known-correct or known-wrong depending on a seeded hash,
//! so repeated queries behave like a frozen checkpoint.

use std::collections::HashMap;
use verifai_lake::value::normalize_str;
use verifai_lake::Value;

/// Key for a fact: normalized entity and attribute names.
fn fact_key(entity: &str, attribute: &str) -> (String, String) {
    (normalize_str(entity), normalize_str(attribute))
}

/// Ground-truth fact store with per-attribute domains.
#[derive(Debug, Default, Clone)]
pub struct WorldModel {
    facts: HashMap<(String, String), Value>,
    /// Distinct values seen per attribute — the space of plausible wrong
    /// answers the corrupted model samples from.
    domains: HashMap<String, Vec<Value>>,
}

impl WorldModel {
    /// Empty world.
    pub fn new() -> WorldModel {
        WorldModel::default()
    }

    /// Record a fact. Later inserts overwrite earlier ones (facts are assumed
    /// functional: one value per (entity, attribute)).
    pub fn add_fact(&mut self, entity: &str, attribute: &str, value: Value) {
        if value.is_null() {
            return;
        }
        let domain = self.domains.entry(normalize_str(attribute)).or_default();
        if !domain.iter().any(|v| v.matches(&value)) {
            domain.push(value.clone());
        }
        self.facts.insert(fact_key(entity, attribute), value);
    }

    /// The true value of a fact, if the world knows it.
    pub fn truth(&self, entity: &str, attribute: &str) -> Option<&Value> {
        self.facts.get(&fact_key(entity, attribute))
    }

    /// Number of stored facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// A plausible *wrong* value for an attribute: the `pick`-th domain value
    /// that differs from `not`. Falls back to a literal fabrication when the
    /// domain has no alternative.
    pub fn plausible_wrong(&self, attribute: &str, not: &Value, pick: u64) -> Value {
        let domain = self.domains.get(&normalize_str(attribute));
        if let Some(domain) = domain {
            let alternatives: Vec<&Value> = domain.iter().filter(|v| !v.matches(not)).collect();
            if !alternatives.is_empty() {
                return alternatives[(pick % alternatives.len() as u64) as usize].clone();
            }
        }
        // Fabricate: numeric values drift, text values get a hallucinated name.
        match not.as_f64() {
            Some(x) => Value::Float(x + 1.0 + (pick % 7) as f64),
            None => Value::text(format!("Unknown Entity {}", pick % 97)),
        }
    }

    /// Iterate all facts (normalized keys) — used by diagnostics.
    pub fn facts(&self) -> impl Iterator<Item = (&(String, String), &Value)> {
        self.facts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_are_normalized_and_functional() {
        let mut w = WorldModel::new();
        w.add_fact("Otis G. Pike", "Incumbent Party", Value::text("Democratic"));
        assert_eq!(
            w.truth("otis g pike", "incumbent party"),
            Some(&Value::text("Democratic"))
        );
        w.add_fact("Otis G. Pike", "Incumbent Party", Value::text("Republican"));
        assert_eq!(
            w.truth("Otis G. Pike", "Incumbent Party"),
            Some(&Value::text("Republican"))
        );
        assert_eq!(w.num_facts(), 1);
    }

    #[test]
    fn null_facts_ignored() {
        let mut w = WorldModel::new();
        w.add_fact("x", "y", Value::Null);
        assert_eq!(w.num_facts(), 0);
    }

    #[test]
    fn plausible_wrong_differs_from_truth() {
        let mut w = WorldModel::new();
        w.add_fact("a", "party", Value::text("Democratic"));
        w.add_fact("b", "party", Value::text("Republican"));
        w.add_fact("c", "party", Value::text("Independent"));
        for pick in 0..10 {
            let wrong = w.plausible_wrong("party", &Value::text("Democratic"), pick);
            assert!(
                !wrong.matches(&Value::text("Democratic")),
                "pick {pick}: {wrong:?}"
            );
        }
    }

    #[test]
    fn plausible_wrong_fabricates_when_domain_is_singleton() {
        let mut w = WorldModel::new();
        w.add_fact("a", "score", Value::Int(30));
        let wrong = w.plausible_wrong("score", &Value::Int(30), 3);
        assert!(!wrong.matches(&Value::Int(30)));
        // Fabricated numeric drift stays numeric.
        assert!(wrong.as_f64().is_some());
    }

    #[test]
    fn unknown_attribute_still_fabricates() {
        let w = WorldModel::new();
        let wrong = w.plausible_wrong("nonexistent", &Value::text("x"), 0);
        assert!(!wrong.matches(&Value::text("x")));
    }
}
