//! Grounded verification reasoning — ChatGPT's second role in the paper.
//!
//! Given a generated [`DataObject`] and one retrieved [`DataInstance`], the
//! simulated LLM produces a ternary [`Verdict`] plus a natural-language
//! explanation (the red boxes of the paper's Figure 4) and the prompt/response
//! [`Transcript`] for provenance.
//!
//! The reasoning is genuine — value matching, fact-sentence scanning, claim
//! execution — with residual hash-derived error channels for the things real
//! LLMs get wrong: multi-row arithmetic ([`aggregate_error_rate`]) more than
//! single-cell lookups ([`lookup_error_rate`]), and a small chance of missing
//! that evidence is unrelated ([`relatedness_error_rate`]). Those asymmetries
//! are what produce the paper's Table 2 crossover against the local PASTA
//! model.
//!
//! [`aggregate_error_rate`]: crate::SimLlmConfig::aggregate_error_rate
//! [`lookup_error_rate`]: crate::SimLlmConfig::lookup_error_rate
//! [`relatedness_error_rate`]: crate::SimLlmConfig::relatedness_error_rate

use crate::generate::{entity_key, SimLlm};
use crate::object::{DataObject, ImputedCell, TextClaim, Verdict};
use crate::prompt::{verification_prompt, Transcript};
use verifai_claims::{aggregate_value, execute, parse_claim, ClaimExpr, ExecOutcome};
use verifai_lake::value::normalize_str;
use verifai_lake::{DataInstance, InstanceKind, KgEntity, Table, TextDocument, Tuple, Value};

/// The result of one grounded verification call.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmVerdict {
    /// Ternary outcome.
    pub verdict: Verdict,
    /// Natural-language justification (Figure 4's "further explanation").
    pub explanation: String,
    /// Prompt/response exchange, for provenance (challenge C4).
    pub transcript: Transcript,
}

/// Stable tag for an evidence instance, fed into noise channels.
fn evidence_tag(evidence: &DataInstance) -> u64 {
    let kind = match evidence.kind() {
        InstanceKind::Tuple => 1u64,
        InstanceKind::Table => 2,
        InstanceKind::Text => 3,
        InstanceKind::Kg => 4,
    };
    (kind << 56) ^ evidence.id().raw()
}

/// Swap Verified and Refuted, leaving the non-judgements untouched.
fn flip(v: Verdict) -> Verdict {
    match v {
        Verdict::Verified => Verdict::Refuted,
        Verdict::Refuted => Verdict::Verified,
        Verdict::NotRelated | Verdict::Unknown => v,
    }
}

/// Scan text for the fact sentence pattern `"... {attr} of {entity} is {value}"`
/// and return the (normalized) asserted value. Sentences are split on `.` and
/// normalized before matching, so stylistic prefixes don't matter.
pub fn scan_fact(text: &str, entity: &str, attribute: &str) -> Option<String> {
    let entity = normalize_str(entity);
    let attribute = normalize_str(attribute);
    if entity.is_empty() || attribute.is_empty() {
        return None;
    }
    let needle = format!("{attribute} of {entity} is ");
    for sentence in text.split('.') {
        let norm = normalize_str(sentence);
        if let Some(pos) = norm.find(&needle) {
            let value = norm[pos + needle.len()..].trim();
            if !value.is_empty() {
                return Some(value.to_string());
            }
        }
    }
    None
}

impl SimLlm {
    /// Verify a generated data object against one retrieved evidence instance.
    pub fn verify(&self, object: &DataObject, evidence: &DataInstance) -> LlmVerdict {
        let (verdict, explanation) = match (object, evidence) {
            (DataObject::ImputedCell(cell), DataInstance::Tuple(t)) => {
                self.verify_cell_vs_tuple(cell, t, evidence)
            }
            (DataObject::ImputedCell(cell), DataInstance::Text(d)) => {
                self.verify_cell_vs_text(cell, d, evidence)
            }
            (DataObject::ImputedCell(cell), DataInstance::Table(t)) => {
                self.verify_cell_vs_table(cell, t, evidence)
            }
            (DataObject::TextClaim(claim), DataInstance::Table(t)) => {
                self.verify_claim_vs_table(claim, t, evidence)
            }
            (DataObject::TextClaim(claim), DataInstance::Tuple(t)) => {
                self.verify_claim_vs_tuple(claim, t, evidence)
            }
            (DataObject::TextClaim(claim), DataInstance::Text(d)) => {
                self.verify_claim_vs_text(claim, d, evidence)
            }
            (DataObject::ImputedCell(cell), DataInstance::Kg(e)) => {
                self.verify_cell_vs_kg(cell, e, evidence)
            }
            (DataObject::TextClaim(claim), DataInstance::Kg(e)) => {
                self.verify_claim_vs_kg(claim, e, evidence)
            }
        };
        let mut transcript = Transcript::default();
        transcript.user(verification_prompt(
            &verifai_text::serialize_instance(evidence),
            &object.render(),
        ));
        transcript.assistant(format!("Result: {verdict}. {explanation}"));
        LlmVerdict {
            verdict,
            explanation,
            transcript,
        }
    }

    /// Apply the Verified/Refuted flip channel.
    fn noisy(&self, base: Verdict, tags: &[u64], p: f64) -> Verdict {
        if base != Verdict::NotRelated && self.chance(tags, p) {
            flip(base)
        } else {
            base
        }
    }

    /// Apply the missed-relatedness channel: hallucinate a verdict for
    /// unrelated evidence with probability `relatedness_error_rate`.
    fn relatedness_noise(&self, tags: &[u64]) -> Verdict {
        if self.chance(tags, self.config().relatedness_error_rate) {
            if self.chance(&[tags[0], tags[1], 0xa17], 0.5) {
                Verdict::Verified
            } else {
                Verdict::Refuted
            }
        } else {
            Verdict::NotRelated
        }
    }

    // -- (imputed cell, tuple) ------------------------------------------------

    fn verify_cell_vs_tuple(
        &self,
        cell: &ImputedCell,
        tuple: &Tuple,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [cell.id, evidence_tag(evidence), 0x71];
        // Relatedness: every key value of the generated tuple must appear
        // somewhere in the evidence tuple.
        let keys = cell.tuple.key_values();
        let related = !keys.is_empty()
            && keys
                .iter()
                .all(|k| tuple.values.iter().any(|v| v.matches(k)));
        if !related {
            let v = self.relatedness_noise(&tags);
            return (
                v,
                "The evidence tuple describes a different entity.".to_string(),
            );
        }
        match tuple.get_fuzzy(&cell.column) {
            Some(actual) if !actual.is_null() => {
                let matches = actual.matches(&cell.value);
                let base = if matches {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, self.config().tuple_verify_error_rate);
                let expl = if matches {
                    format!(
                        "The evidence tuple records {} = {}, matching the generated value.",
                        cell.column, actual
                    )
                } else {
                    format!(
                        "The evidence tuple records {} = {}, contradicting the generated value {}.",
                        cell.column, actual, cell.value
                    )
                };
                (v, expl)
            }
            _ => (
                self.relatedness_noise(&tags),
                format!(
                    "The evidence tuple has no usable {} attribute.",
                    cell.column
                ),
            ),
        }
    }

    // -- (imputed cell, text) -------------------------------------------------

    fn verify_cell_vs_text(
        &self,
        cell: &ImputedCell,
        doc: &TextDocument,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [cell.id, evidence_tag(evidence), 0x72];
        let entity = entity_key(&cell.tuple);
        let body = doc.full_text();
        if !normalize_str(&body).contains(&entity) {
            let v = self.relatedness_noise(&tags);
            return (
                v,
                "The text does not mention the entity in question.".to_string(),
            );
        }
        match scan_fact(&body, &entity, &cell.column) {
            Some(asserted) => {
                let generated = cell.value.normalized();
                let matches = asserted == generated
                    || match (cell.value.as_f64(), Value::infer(&asserted).as_f64()) {
                        (Some(a), Some(b)) => verifai_lake::value::float_eq(a, b),
                        _ => false,
                    };
                let base = if matches {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, self.config().tuple_verify_error_rate);
                let expl = if matches {
                    format!(
                        "The text states the {} is '{asserted}', which matches.",
                        cell.column
                    )
                } else {
                    format!(
                        "The text states the {} is '{asserted}', not '{generated}'.",
                        cell.column
                    )
                };
                (v, expl)
            }
            None => (
                self.relatedness_noise(&tags),
                format!(
                    "The text mentions the entity but says nothing about its {}.",
                    cell.column
                ),
            ),
        }
    }

    // -- (imputed cell, table) ------------------------------------------------

    fn verify_cell_vs_table(
        &self,
        cell: &ImputedCell,
        table: &Table,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        // Reason over each row as a tuple and take the strongest signal.
        let mut saw_refuted = false;
        for row in 0..table.num_rows() {
            let Some(t) = table.tuple_at(row, row as u64) else {
                continue;
            };
            let (v, expl) = self.verify_cell_vs_tuple(cell, &t, evidence);
            match v {
                Verdict::Verified => {
                    return (
                        Verdict::Verified,
                        format!("Row {} of the table: {expl}", row + 1),
                    )
                }
                Verdict::Refuted => saw_refuted = true,
                Verdict::NotRelated | Verdict::Unknown => {}
            }
        }
        if saw_refuted {
            (
                Verdict::Refuted,
                "A matching row in the evidence table contradicts the generated value.".to_string(),
            )
        } else {
            (
                Verdict::NotRelated,
                "No row of the evidence table concerns this entity.".to_string(),
            )
        }
    }

    // -- (claim, table) ---------------------------------------------------------

    fn verify_claim_vs_table(
        &self,
        claim: &TextClaim,
        table: &Table,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [claim.id, evidence_tag(evidence), 0x73];
        // Misread channel: the model occasionally misunderstands the sentence.
        if self.chance(&[tags[0], tags[1], 0x3f], self.config().misread_rate) {
            let pick = self.chance(&[tags[0], tags[1], 0x40], 0.5);
            let v = if pick {
                Verdict::Verified
            } else {
                Verdict::Refuted
            };
            return (
                v,
                "The claim was interpreted loosely against the table.".to_string(),
            );
        }
        // Caption-scope check — the LLM's contextual strength, and the paper's
        // Figure 4 mechanism: E2 is "not related because it is for the year
        // 1959". An out-of-scope table (e.g. the same championship series but
        // a different year) can neither support nor refute the claim. A table
        // matched only by an under-specified (vague) scope gets the existential
        // reading: it can verify the claim but not single-handedly refute it.
        let scope_relation = claim
            .scope
            .as_deref()
            .map(|scope| verifai_claims::scope_relation(scope, &table.caption))
            .unwrap_or(verifai_claims::ScopeRelation::Partial);
        if scope_relation == verifai_claims::ScopeRelation::Mismatch {
            let scope = claim.scope.as_deref().unwrap_or_default();
            let v = self.relatedness_noise(&tags);
            return (
                v,
                format!(
                    "The claim concerns '{scope}', but the evidence table is \
                     '{}'; it is not related.",
                    table.caption
                ),
            );
        }
        // Language understanding: the LLM grasps the claim even in hard
        // paraphrase (its strength); fall back to the grammar parser otherwise.
        let expr = claim.expr.clone().or_else(|| parse_claim(&claim.text));
        let Some(expr) = expr else {
            // No reading of the claim at all — judge relatedness lexically.
            return (
                self.relatedness_noise(&tags),
                "The claim could not be related to the evidence table.".to_string(),
            );
        };
        match execute(&expr, table) {
            ExecOutcome::Unsupported => {
                let v = self.relatedness_noise(&tags);
                (v, explain_unsupported(&expr, table))
            }
            ExecOutcome::False if scope_relation == verifai_claims::ScopeRelation::Partial => {
                // Existential reading of an under-specified claim: this family
                // member does not bear it out, but another might — abstain.
                let v = self.relatedness_noise(&tags);
                (
                    v,
                    format!(
                        "The evidence table '{}' does not bear the claim out, but the \
                         claim does not pin down which table it refers to; it cannot be \
                         refuted from this table alone.",
                        table.caption
                    ),
                )
            }
            outcome => {
                let err = if expr.is_aggregate_like() {
                    self.config().aggregate_error_rate
                } else {
                    self.config().lookup_error_rate
                };
                let base = if outcome == ExecOutcome::True {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, err);
                (v, explain_outcome(&expr, table, v))
            }
        }
    }

    // -- (claim, tuple) ---------------------------------------------------------

    fn verify_claim_vs_tuple(
        &self,
        claim: &TextClaim,
        tuple: &Tuple,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        // View the tuple as a one-row table; single-row evidence can support
        // lookups but never aggregates. A tuple is *direct* evidence about its
        // subject — no caption family to be ambiguous over — so the pseudo-table
        // takes the claim's own scope as caption (relation Exact): a tuple that
        // contradicts a lookup about its subject refutes it outright.
        let caption = claim
            .scope
            .clone()
            .unwrap_or_else(|| "evidence tuple".to_string());
        let mut table = Table::new(
            u64::MAX,
            caption.clone(),
            tuple.schema.clone(),
            tuple.source,
        );
        let _ = table.push_row(tuple.values.clone());
        let expr = claim.expr.clone().or_else(|| parse_claim(&claim.text));
        match expr {
            Some(e) if e.is_aggregate_like() => (
                Verdict::NotRelated,
                "A single tuple cannot establish a claim about the whole table.".to_string(),
            ),
            _ => {
                let mut scoped = claim.clone();
                scoped.scope = Some(caption);
                self.verify_claim_vs_table(&scoped, &table, evidence)
            }
        }
    }

    // -- (claim, text) ----------------------------------------------------------

    fn verify_claim_vs_text(
        &self,
        claim: &TextClaim,
        doc: &TextDocument,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [claim.id, evidence_tag(evidence), 0x74];
        let Some(ClaimExpr::Lookup {
            key,
            column,
            op,
            value,
            ..
        }) = claim.expr.clone().or_else(|| parse_claim(&claim.text))
        else {
            return (
                Verdict::NotRelated,
                "The text evidence cannot evaluate a table-level claim.".to_string(),
            );
        };
        let body = doc.full_text();
        match scan_fact(&body, &key.to_string(), &column) {
            Some(asserted) => {
                // Evaluate the claim's comparison against the asserted value —
                // a negated claim ("is not X") is REFUTED by a text asserting X.
                let asserted_value = Value::infer(&asserted);
                let holds = op.eval(&asserted_value, &value);
                let base = if holds {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, self.config().tuple_verify_error_rate);
                let expl = format!(
                    "The text states the {column} of {key} is '{asserted}'{}.",
                    if holds {
                        ", as claimed"
                    } else {
                        ", contradicting the claim"
                    }
                );
                (v, expl)
            }
            None => (
                self.relatedness_noise(&tags),
                "The text says nothing about the claimed fact.".to_string(),
            ),
        }
    }
}

impl SimLlm {
    // -- (imputed cell, knowledge-graph entity) -------------------------------
    //
    // The cross-modal pair the paper's §5 singles out: a small subgraph either
    // asserts the disputed fact or it does not.

    fn verify_cell_vs_kg(
        &self,
        cell: &ImputedCell,
        entity: &KgEntity,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [cell.id, evidence_tag(evidence), 0x75];
        let subject = entity_key(&cell.tuple);
        if !entity.is_about(&subject) {
            let v = self.relatedness_noise(&tags);
            return (
                v,
                "The knowledge-graph entity is a different subject.".to_string(),
            );
        }
        match entity.object_of(&cell.column) {
            Some(object) if !object.is_null() => {
                let matches = object.matches(&cell.value);
                let base = if matches {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, self.config().tuple_verify_error_rate);
                let expl = if matches {
                    format!(
                        "The knowledge graph asserts ({}, {}, {}), matching the generated value.",
                        entity.name, cell.column, object
                    )
                } else {
                    format!(
                        "The knowledge graph asserts ({}, {}, {}), contradicting the generated \
                         value {}.",
                        entity.name, cell.column, object, cell.value
                    )
                };
                (v, expl)
            }
            _ => (
                self.relatedness_noise(&tags),
                format!(
                    "The knowledge-graph entity has no {} edge to compare against.",
                    cell.column
                ),
            ),
        }
    }

    // -- (claim, knowledge-graph entity) --------------------------------------

    fn verify_claim_vs_kg(
        &self,
        claim: &TextClaim,
        entity: &KgEntity,
        evidence: &DataInstance,
    ) -> (Verdict, String) {
        let tags = [claim.id, evidence_tag(evidence), 0x76];
        let Some(ClaimExpr::Lookup {
            key,
            column,
            op,
            value,
            ..
        }) = claim.expr.clone().or_else(|| parse_claim(&claim.text))
        else {
            return (
                Verdict::NotRelated,
                "A single knowledge-graph entity cannot evaluate a table-level claim.".to_string(),
            );
        };
        if !entity.is_about(&key.to_string()) {
            let v = self.relatedness_noise(&tags);
            return (
                v,
                "The knowledge-graph entity is a different subject.".to_string(),
            );
        }
        match entity.object_of(&column) {
            Some(object) if !object.is_null() => {
                let holds = op.eval(object, &value);
                let base = if holds {
                    Verdict::Verified
                } else {
                    Verdict::Refuted
                };
                let v = self.noisy(base, &tags, self.config().lookup_error_rate);
                let expl = format!(
                    "The knowledge graph asserts ({}, {column}, {object}){}.",
                    entity.name,
                    if holds {
                        ", as claimed"
                    } else {
                        ", contradicting the claim"
                    }
                );
                (v, expl)
            }
            _ => (
                self.relatedness_noise(&tags),
                format!("The knowledge-graph entity has no {column} edge."),
            ),
        }
    }
}

/// Figure-4-style explanation, coherent with the verdict actually emitted:
/// when the error channel flips an aggregate verdict, the model is simulating
/// an arithmetic slip, so the number it *reports* is the one consistent with
/// its (wrong) conclusion rather than the true aggregate.
fn explain_outcome(expr: &ClaimExpr, table: &Table, verdict: Verdict) -> String {
    let relation = if verdict == Verdict::Verified {
        "which supports the claim"
    } else {
        "which refutes the claim"
    };
    match expr {
        ClaimExpr::Aggregate { value: claimed, .. } => {
            let claimed_num = claimed.as_f64();
            let shown = match (verdict, aggregate_value(expr, table), claimed_num) {
                // Supporting the claim: the model believes the aggregate equals
                // the claimed value.
                (Verdict::Verified, _, Some(c)) => Some(c),
                // Refuting: report the computed aggregate — unless it actually
                // equals the claim (a flipped verdict), in which case the slip
                // produced a nearby wrong number.
                (_, Some(actual), Some(c)) => {
                    if (actual - c).abs() <= 1e-3 * actual.abs().max(1.0) {
                        Some(actual + 1.0)
                    } else {
                        Some(actual)
                    }
                }
                (_, actual, _) => actual,
            };
            match shown {
                Some(x) => format!(
                    "An aggregation query over the evidence table '{}' yields {}, {relation}.",
                    table.caption,
                    trim_float(x)
                ),
                None => format!(
                    "Aggregating the evidence table '{}' decides the claim, {relation}.",
                    table.caption
                ),
            }
        }
        ClaimExpr::Lookup { key, column, .. } => format!(
            "Looking up {key} in the evidence table '{}' shows its {column}, {relation}.",
            table.caption
        ),
        ClaimExpr::Superlative { rank_column, .. } => format!(
            "Ranking the evidence table '{}' by {rank_column} decides the claim, {relation}.",
            table.caption
        ),
    }
}

/// Explanation when the table cannot bind the claim.
fn explain_unsupported(expr: &ClaimExpr, table: &Table) -> String {
    let cols = expr.mentioned_columns().join(", ");
    format!(
        "The evidence table '{}' does not contain the information the claim is about ({cols}); \
         it is not related.",
        table.caption
    )
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimLlmConfig;
    use crate::world::WorldModel;
    use verifai_claims::{AggFunc, CmpOp, Predicate};
    use verifai_lake::{Column, DataType, Schema};

    fn oracle() -> SimLlm {
        SimLlm::new(SimLlmConfig::oracle(1), WorldModel::new())
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::key("district", DataType::Text),
            Column::new("incumbent", DataType::Text),
        ])
    }

    fn gen_cell(value: &str) -> ImputedCell {
        ImputedCell {
            id: 1,
            tuple: Tuple {
                id: 0,
                table: 0,
                row_index: 0,
                schema: schema(),
                values: vec![Value::text("New York 1"), Value::Null],
                source: 0,
            },
            column: "incumbent".into(),
            value: Value::text(value),
        }
    }

    fn evidence_tuple(district: &str, incumbent: &str) -> DataInstance {
        DataInstance::Tuple(Tuple {
            id: 10,
            table: 2,
            row_index: 0,
            schema: schema(),
            values: vec![Value::text(district), Value::text(incumbent)],
            source: 0,
        })
    }

    #[test]
    fn cell_vs_tuple_verified_refuted_notrelated() {
        let llm = oracle();
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let good = llm.verify(&obj, &evidence_tuple("New York 1", "Otis Pike"));
        assert_eq!(good.verdict, Verdict::Verified);
        let bad = llm.verify(&obj, &evidence_tuple("New York 1", "Someone Else"));
        assert_eq!(bad.verdict, Verdict::Refuted);
        assert!(bad.explanation.contains("Someone Else"));
        let other = llm.verify(&obj, &evidence_tuple("Ohio 5", "Otis Pike"));
        assert_eq!(other.verdict, Verdict::NotRelated);
    }

    #[test]
    fn cell_vs_text_scans_fact_sentences() {
        let llm = oracle();
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let good = DataInstance::Text(TextDocument::new(
            1,
            "New York 1",
            "New York 1 is a congressional district. The incumbent of New York 1 is Otis Pike.",
            0,
        ));
        assert_eq!(llm.verify(&obj, &good).verdict, Verdict::Verified);

        let bad = DataInstance::Text(TextDocument::new(
            2,
            "New York 1",
            "The incumbent of New York 1 is Stuyvesant Wainwright.",
            0,
        ));
        let v = llm.verify(&obj, &bad);
        assert_eq!(v.verdict, Verdict::Refuted);
        assert!(v.explanation.contains("stuyvesant wainwright"));

        let silent = DataInstance::Text(TextDocument::new(
            3,
            "New York 1",
            "New York 1 is a congressional district on Long Island.",
            0,
        ));
        assert_eq!(llm.verify(&obj, &silent).verdict, Verdict::NotRelated);

        let unrelated = DataInstance::Text(TextDocument::new(
            4,
            "Stomp the Yard",
            "Stomp the Yard is a 2007 film.",
            0,
        ));
        assert_eq!(llm.verify(&obj, &unrelated).verdict, Verdict::NotRelated);
    }

    fn ncaa_table() -> Table {
        let mut t = Table::new(
            30,
            "1959 NCAA Track and Field Championships",
            Schema::new(vec![
                Column::key("team", DataType::Text),
                Column::new("points", DataType::Int),
            ]),
            0,
        );
        for (team, pts) in [("Kansas", 42), ("Brown", 1), ("Yale", 1)] {
            t.push_row(vec![Value::text(team), Value::Int(pts)])
                .unwrap();
        }
        t
    }

    /// The Figure 4 case: a count claim refuted by an aggregation query, and a
    /// not-related table correctly set aside, both with explanations.
    #[test]
    fn figure4_count_claim_refuted_with_aggregation_explanation() {
        let llm = oracle();
        // "Brown was the only team to score exactly 1 point" -> count(points=1) = 1.
        let claim = DataObject::TextClaim(TextClaim {
            id: 9,
            text: "in the 1959 NCAA Track and Field Championships, the number of rows where \
                   points is 1 is 1"
                .into(),
            expr: Some(ClaimExpr::Aggregate {
                func: AggFunc::Count,
                column: None,
                predicates: vec![Predicate {
                    column: "points".into(),
                    op: CmpOp::Eq,
                    value: Value::Int(1),
                }],
                op: CmpOp::Eq,
                value: Value::Int(1),
            }),
            // The exact scope the claim text names; with only a vague scope the
            // existential reading would abstain instead of refuting.
            scope: Some("1959 NCAA Track and Field Championships".into()),
        });
        let e1 = DataInstance::Table(ncaa_table());
        let v1 = llm.verify(&claim, &e1);
        assert_eq!(v1.verdict, Verdict::Refuted);
        assert!(
            v1.explanation.contains("aggregation query"),
            "{}",
            v1.explanation
        );
        assert!(v1.explanation.contains('2'), "{}", v1.explanation); // actual count

        // E2: a table about films — not related.
        let mut film = Table::new(
            31,
            "2007 dance films",
            Schema::new(vec![
                Column::key("film", DataType::Text),
                Column::new("lead actor", DataType::Text),
            ]),
            0,
        );
        film.push_row(vec![
            Value::text("Stomp the Yard"),
            Value::text("Columbus Short"),
        ])
        .unwrap();
        let v2 = llm.verify(&claim, &DataInstance::Table(film));
        assert_eq!(v2.verdict, Verdict::NotRelated);
        assert!(v2.explanation.contains("not related"), "{}", v2.explanation);
    }

    #[test]
    fn claim_vs_table_parses_text_when_expr_missing() {
        let llm = oracle();
        let claim = DataObject::TextClaim(TextClaim {
            id: 3,
            text: "in the championships, the points of Brown is 1".into(),
            expr: None,
            scope: None,
        });
        let v = llm.verify(&claim, &DataInstance::Table(ncaa_table()));
        assert_eq!(v.verdict, Verdict::Verified);
    }

    #[test]
    fn claim_vs_tuple_rejects_aggregates() {
        let llm = oracle();
        let claim = DataObject::TextClaim(TextClaim {
            id: 4,
            text: "in the c, the total points is 44".into(),
            expr: None,
            scope: None,
        });
        let t = ncaa_table().tuple_at(0, 50).unwrap();
        let v = llm.verify(&claim, &DataInstance::Tuple(t));
        assert_eq!(v.verdict, Verdict::NotRelated);
    }

    #[test]
    fn transcripts_follow_paper_template() {
        let llm = oracle();
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let v = llm.verify(&obj, &evidence_tuple("New York 1", "Otis Pike"));
        let prompt = &v.transcript.messages[0].content;
        assert!(prompt.starts_with("Please use the evidence below"));
        assert!(prompt.contains("Generative Data:"));
        assert!(v.transcript.messages[1]
            .content
            .starts_with("Result: Verified"));
    }

    #[test]
    fn noise_channels_flip_deterministically() {
        // With a 100% error rate, verdicts must flip but stay deterministic.
        let cfg = SimLlmConfig {
            tuple_verify_error_rate: 1.0,
            ..SimLlmConfig::oracle(2)
        };
        let llm = SimLlm::new(cfg, WorldModel::new());
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let e = evidence_tuple("New York 1", "Otis Pike");
        let v1 = llm.verify(&obj, &e);
        assert_eq!(v1.verdict, Verdict::Refuted); // flipped from Verified
        assert_eq!(llm.verify(&obj, &e).verdict, v1.verdict);
    }

    #[test]
    fn cell_vs_kg_matches_triples() {
        use verifai_lake::KgEntity;
        let llm = oracle();
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let mut good = KgEntity::new(60, "New York 1", 0);
        good.assert_fact("incumbent", Value::text("Otis Pike"));
        let v = llm.verify(&obj, &DataInstance::Kg(good));
        assert_eq!(v.verdict, Verdict::Verified);
        assert!(
            v.explanation.contains("knowledge graph asserts"),
            "{}",
            v.explanation
        );

        let mut bad = KgEntity::new(61, "New York 1", 0);
        bad.assert_fact("incumbent", Value::text("Someone Else"));
        assert_eq!(
            llm.verify(&obj, &DataInstance::Kg(bad)).verdict,
            Verdict::Refuted
        );

        let mut other = KgEntity::new(62, "Ohio 5", 0);
        other.assert_fact("incumbent", Value::text("Otis Pike"));
        assert_eq!(
            llm.verify(&obj, &DataInstance::Kg(other)).verdict,
            Verdict::NotRelated
        );

        // Subject matches but the predicate is absent.
        let silent = KgEntity::new(63, "New York 1", 0);
        assert_eq!(
            llm.verify(&obj, &DataInstance::Kg(silent)).verdict,
            Verdict::NotRelated
        );
    }

    #[test]
    fn claim_vs_kg_handles_lookups_only() {
        use verifai_claims::CmpOp;
        use verifai_lake::KgEntity;
        let llm = oracle();
        let mut kg = KgEntity::new(70, "Brown", 0);
        kg.assert_fact("points", Value::Int(1));
        let lookup = DataObject::TextClaim(TextClaim {
            id: 20,
            text: "in the c, the points of Brown is 1".into(),
            expr: Some(ClaimExpr::Lookup {
                key_column: "team".into(),
                key: Value::text("Brown"),
                column: "points".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }),
            scope: None,
        });
        assert_eq!(
            llm.verify(&lookup, &DataInstance::Kg(kg.clone())).verdict,
            Verdict::Verified
        );

        let aggregate = DataObject::TextClaim(TextClaim {
            id: 21,
            text: "in the c, the total points is 85".into(),
            expr: None,
            scope: None,
        });
        assert_eq!(
            llm.verify(&aggregate, &DataInstance::Kg(kg)).verdict,
            Verdict::NotRelated
        );
    }

    #[test]
    fn existential_reading_abstains_on_partial_scope() {
        let llm = oracle();
        // Claim scoped to the caption family (no year) that is FALSE on this
        // member: the LLM must abstain rather than refute.
        let claim = DataObject::TextClaim(TextClaim {
            id: 30,
            text: "in the NCAA Track and Field Championships, the points of Brown is 7".into(),
            expr: None,
            scope: Some("NCAA Track and Field Championships".into()),
        });
        let v = llm.verify(&claim, &DataInstance::Table(ncaa_table()));
        assert_eq!(v.verdict, Verdict::NotRelated, "{}", v.explanation);
        assert!(
            v.explanation.contains("does not pin down"),
            "{}",
            v.explanation
        );

        // The same claim TRUE on this member is verified even under the
        // existential reading.
        let true_claim = DataObject::TextClaim(TextClaim {
            id: 31,
            text: "in the NCAA Track and Field Championships, the points of Brown is 1".into(),
            expr: None,
            scope: Some("NCAA Track and Field Championships".into()),
        });
        assert_eq!(
            llm.verify(&true_claim, &DataInstance::Table(ncaa_table()))
                .verdict,
            Verdict::Verified
        );
    }

    #[test]
    fn cell_vs_table_uses_matching_row() {
        let llm = oracle();
        let mut table = Table::new(40, "elections", schema(), 0);
        table
            .push_row(vec![Value::text("Ohio 5"), Value::text("Other Person")])
            .unwrap();
        table
            .push_row(vec![Value::text("New York 1"), Value::text("Otis Pike")])
            .unwrap();
        let obj = DataObject::ImputedCell(gen_cell("Otis Pike"));
        let v = llm.verify(&obj, &DataInstance::Table(table));
        assert_eq!(v.verdict, Verdict::Verified);
    }
}
