//! Prompt templates and chat transcripts.
//!
//! Renders the two prompt templates from the paper (§4) verbatim: the tuple
//! completion prompt and the verification prompt. Transcripts are attached to
//! provenance records so a human can audit exactly what the "model" saw —
//! challenge C4.

use verifai_lake::Table;

/// One side of a chat exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The framework prompting the model.
    User,
    /// The model's reply.
    Assistant,
}

/// One message in a transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Who produced the message.
    pub role: Role,
    /// Message text.
    pub content: String,
}

/// A full prompt/response exchange.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    /// Messages in order.
    pub messages: Vec<ChatMessage>,
}

impl Transcript {
    /// Append a user prompt.
    pub fn user(&mut self, content: impl Into<String>) {
        self.messages.push(ChatMessage {
            role: Role::User,
            content: content.into(),
        });
    }

    /// Append a model reply.
    pub fn assistant(&mut self, content: impl Into<String>) {
        self.messages.push(ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        });
    }
}

/// Render the paper's tuple-completion prompt:
///
/// ```text
/// Question:
/// <table name>
/// column 1 | column 2 | ... | column n
/// a1 | NaN | ... | z1
/// Please fill the missing values, annotated by NaN
/// ```
pub fn tuple_completion_prompt(table: &Table) -> String {
    let mut s = String::from("Question:\n");
    s.push_str(&table.caption);
    s.push('\n');
    let headers: Vec<&str> = table.schema.names().collect();
    s.push_str(&headers.join(" | "));
    s.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        s.push_str(&cells.join(" | "));
        s.push('\n');
    }
    s.push_str("Please fill the missing values, annotated by NaN");
    s
}

/// Render the paper's verification prompt:
///
/// ```text
/// Please use the evidence below to validate the generative data.
/// Evidence: [Use the retrieved tuple/table/text]
/// Generative Data: [Data object to be verified]
/// Result: Verified/Refuted/Not Related + Further explanation
/// ```
pub fn verification_prompt(evidence: &str, generative_data: &str) -> String {
    format!(
        "Please use the evidence below to validate the generative data.\n\
         Evidence: {evidence}\n\
         Generative Data: {generative_data}\n\
         Result: Verified/Refuted/Not Related + Further explanation"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_lake::{Column, DataType, Schema, Value};

    #[test]
    fn completion_prompt_shows_nan_and_instruction() {
        let mut t = Table::new(
            0,
            "US House elections",
            Schema::new(vec![
                Column::key("district", DataType::Text),
                Column::new("incumbent", DataType::Text),
            ]),
            0,
        );
        t.push_row(vec![Value::text("NY-1"), Value::Null]).unwrap();
        let p = tuple_completion_prompt(&t);
        assert!(p.starts_with("Question:\nUS House elections\ndistrict | incumbent\n"));
        assert!(p.contains("NY-1 | NaN"));
        assert!(p.ends_with("Please fill the missing values, annotated by NaN"));
    }

    #[test]
    fn verification_prompt_shape() {
        let p = verification_prompt("a tuple", "a claim");
        assert!(p.starts_with("Please use the evidence below"));
        assert!(p.contains("Evidence: a tuple"));
        assert!(p.contains("Generative Data: a claim"));
        assert!(p.ends_with("Result: Verified/Refuted/Not Related + Further explanation"));
    }

    #[test]
    fn transcript_roundtrip() {
        let mut t = Transcript::default();
        t.user("hello");
        t.assistant("hi");
        assert_eq!(t.messages.len(), 2);
        assert_eq!(t.messages[0].role, Role::User);
        assert_eq!(t.messages[1].content, "hi");
    }
}
