//! Simulated-LLM configuration.

/// Behavioural knobs of [`crate::SimLlm`].
///
/// Defaults are calibrated so that the end-to-end experiments land near the
/// paper's reported numbers (see EXPERIMENTS.md); each knob corresponds to a
/// documented failure mode of real LLMs rather than an arbitrary fudge factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimLlmConfig {
    /// Probability that the world model "knows" any given fact correctly.
    /// Drives ungrounded tuple imputation (paper baseline: 0.52).
    pub knowledge_reliability: f64,
    /// Probability of judging a textual claim correctly with no evidence
    /// (paper baseline: 0.54).
    pub unaided_claim_accuracy: f64,
    /// Error rate when comparing an imputed cell against tuple/text evidence —
    /// fuzzy value matching occasionally misfires on formatting variants.
    pub tuple_verify_error_rate: f64,
    /// Error rate when verifying a *single-row lookup* claim against a table.
    pub lookup_error_rate: f64,
    /// Error rate when verifying a *multi-row* claim (count / sum / average /
    /// superlative) against a table. LLMs are reliably weak at row-set
    /// arithmetic, which is why the paper's PASTA beats ChatGPT on relevant
    /// tables (0.89 vs 0.75).
    pub aggregate_error_rate: f64,
    /// Probability of failing to notice that evidence is unrelated (emitting a
    /// hallucinated verdict instead of NotRelated). LLMs generalize well here,
    /// which is why ChatGPT beats PASTA on retrieved tables (0.91 vs 0.72).
    pub relatedness_error_rate: f64,
    /// Probability that the model misreads a claim's semantics entirely
    /// (affects grounded verification of hard paraphrases).
    pub misread_rate: f64,
    /// Seed for all hash-derived noise.
    pub seed: u64,
}

impl Default for SimLlmConfig {
    fn default() -> Self {
        SimLlmConfig {
            knowledge_reliability: 0.52,
            unaided_claim_accuracy: 0.54,
            tuple_verify_error_rate: 0.18,
            lookup_error_rate: 0.05,
            aggregate_error_rate: 0.22,
            relatedness_error_rate: 0.06,
            misread_rate: 0.03,
            seed: 0x11a5,
        }
    }
}

impl SimLlmConfig {
    /// A perfectly reliable oracle configuration (useful in tests that need to
    /// isolate non-LLM error sources).
    pub fn oracle(seed: u64) -> SimLlmConfig {
        SimLlmConfig {
            knowledge_reliability: 1.0,
            unaided_claim_accuracy: 1.0,
            tuple_verify_error_rate: 0.0,
            lookup_error_rate: 0.0,
            aggregate_error_rate: 0.0,
            relatedness_error_rate: 0.0,
            misread_rate: 0.0,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_baselines() {
        let c = SimLlmConfig::default();
        assert!((c.knowledge_reliability - 0.52).abs() < 1e-12);
        assert!((c.unaided_claim_accuracy - 0.54).abs() < 1e-12);
        // Aggregates must be markedly harder than lookups for the Table 2
        // crossover to appear.
        assert!(c.aggregate_error_rate > 3.0 * c.lookup_error_rate);
    }

    #[test]
    fn oracle_is_noise_free() {
        let c = SimLlmConfig::oracle(1);
        assert_eq!(c.tuple_verify_error_rate, 0.0);
        assert_eq!(c.knowledge_reliability, 1.0);
    }
}
