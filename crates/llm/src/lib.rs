#![warn(missing_docs)]
//! # verifai-llm
//!
//! The generative-model substrate: a deterministic simulated LLM (`SimLlm`)
//! standing in for ChatGPT in both of its roles in the paper — the *generator*
//! whose outputs need verification, and the default one-size-fits-all
//! *Verifier*.
//!
//! ## Why a simulation, and what it preserves
//!
//! The paper's headline observation is a *gap*: the bare model imputes tuple
//! cells at 0.52 accuracy and judges claims at 0.54, but reaches 0.88–0.91 when
//! grounded in retrieved evidence. [`SimLlm`] reproduces the mechanism behind
//! that gap rather than the numbers alone:
//!
//! * **Ungrounded generation** ([`generate`]) consults a [`world::WorldModel`]
//!   — a fact store behind a per-fact *corruption channel*. Each fact is
//!   consistently "known" or "mis-known" (decided by a seeded hash, like the
//!   frozen weights of a checkpoint), with reliability
//!   [`SimLlmConfig::knowledge_reliability`].
//! * **Grounded verification** ([`reason`]) reads the supplied evidence and
//!   reasons over it: value matching for tuple evidence, fact-sentence scanning
//!   for text evidence, claim execution for table evidence. Residual error
//!   channels model what LLMs are actually bad at — multi-row arithmetic
//!   (`aggregate_error_rate`) — and what they are good at — relatedness
//!   detection and explanation.
//!
//! All noise is hash-derived from `(seed, object, evidence)`, so every
//! experiment is reproducible and the "model" answers the same question the
//! same way every time.

pub mod config;
pub mod generate;
pub mod object;
pub mod prompt;
pub mod reason;
pub mod world;

pub use config::SimLlmConfig;
pub use generate::{entity_key, SimLlm};
pub use object::{DataObject, ImputedCell, TextClaim, Verdict};
pub use prompt::{ChatMessage, Role, Transcript};
pub use reason::{scan_fact, LlmVerdict};
pub use world::WorldModel;
