//! The simulated LLM: construction and ungrounded generation.
//!
//! [`SimLlm`] plays ChatGPT's first role in the paper — the *generator* whose
//! outputs VerifAI must verify. Generation consults the [`WorldModel`] through a
//! per-fact corruption channel: a seeded hash of `(entity, attribute)` decides
//! once and for all whether this "checkpoint" knows the fact, giving the
//! configured ungrounded accuracy (paper baseline: 0.52 for imputation, 0.54 for
//! claim judgment).
//!
//! ### Simulation honesty
//!
//! The harness hands the simulator ground truth (the world model; claim labels)
//! and the simulator *degrades* it deterministically. This is the standard way
//! to model a fixed-accuracy black box; nothing downstream of the LLM ever sees
//! the ground truth.

use crate::config::SimLlmConfig;
use crate::prompt::{tuple_completion_prompt, Transcript};
use crate::world::WorldModel;
use verifai_embed::hashing::{fnv1a, splitmix64, unit_float};
use verifai_lake::value::normalize_str;
use verifai_lake::{Table, Tuple, Value};

/// The normalized entity key of a tuple: its key-column values joined.
///
/// Both the world model population (datagen) and the LLM's fact lookups use
/// this convention, so they agree on what "the entity of this tuple" means.
pub fn entity_key(tuple: &Tuple) -> String {
    let parts: Vec<String> = tuple
        .key_values()
        .iter()
        .map(|v| normalize_str(&v.to_string()))
        .collect();
    parts.join(" ")
}

/// A deterministic simulated large language model.
#[derive(Debug, Clone)]
pub struct SimLlm {
    config: SimLlmConfig,
    world: WorldModel,
}

impl SimLlm {
    /// Model over a world with the given behavioural configuration.
    pub fn new(config: SimLlmConfig, world: WorldModel) -> SimLlm {
        SimLlm { config, world }
    }

    /// The model's configuration.
    pub fn config(&self) -> &SimLlmConfig {
        &self.config
    }

    /// The underlying world model (for diagnostics).
    pub fn world(&self) -> &WorldModel {
        &self.world
    }

    /// Hash-derived Bernoulli draw: deterministic per `(seed, tags)`.
    pub(crate) fn chance(&self, tags: &[u64], p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut h = self.config.seed;
        for &t in tags {
            h = splitmix64(h ^ t.wrapping_mul(0x9e3779b97f4a7c15));
        }
        unit_float(h) < p
    }

    /// Hash a string into a tag for [`Self::chance`].
    pub(crate) fn tag(&self, s: &str) -> u64 {
        fnv1a(s.as_bytes(), self.config.seed)
    }

    /// Impute one missing cell of a tuple, ungrounded (paper Figure 1a).
    ///
    /// The model is correct with probability
    /// [`SimLlmConfig::knowledge_reliability`], consistently per
    /// `(entity, attribute)`.
    pub fn impute_cell(&self, tuple: &Tuple, column: &str) -> Value {
        let entity = entity_key(tuple);
        let attr_tag = self.tag(&normalize_str(column));
        let ent_tag = self.tag(&entity);
        let knows = self.chance(
            &[ent_tag, attr_tag, 0x6e0],
            self.config.knowledge_reliability,
        );
        match self.world.truth(&entity, column) {
            Some(truth) if knows => truth.clone(),
            Some(truth) => {
                let pick = splitmix64(ent_tag ^ attr_tag);
                self.world.plausible_wrong(column, truth, pick)
            }
            None => {
                // The world never recorded this fact; the model hallucinates a
                // domain-plausible value.
                let pick = splitmix64(ent_tag ^ attr_tag ^ 0xdead);
                self.world.plausible_wrong(column, &Value::Null, pick)
            }
        }
    }

    /// Complete every `NaN` cell of a table (the paper's batch prompt).
    /// Returns the completed table and the prompt/response transcript.
    pub fn complete_table(&self, table: &Table) -> (Table, Transcript) {
        let mut transcript = Transcript::default();
        transcript.user(tuple_completion_prompt(table));
        let mut completed = table.clone();
        for row in 0..table.num_rows() {
            let Some(tuple) = table.tuple_at(row, row as u64) else {
                continue;
            };
            for col in tuple.null_indices() {
                let column = table.schema.columns()[col].name.clone();
                let value = self.impute_cell(&tuple, &column);
                if let Some(cell) = completed.cell_mut(row, col) {
                    *cell = value;
                }
            }
        }
        let mut reply = String::from("Here is the completed table:\n");
        reply.push_str(&crate::prompt::tuple_completion_prompt(&completed));
        transcript.assistant(reply);
        (completed, transcript)
    }

    /// Judge a textual claim with no evidence (paper baseline: 0.54 accuracy).
    ///
    /// `label` is the ground-truth answer known to the workload harness; the
    /// model returns it correctly with probability
    /// [`SimLlmConfig::unaided_claim_accuracy`], hash-keyed on the claim text so
    /// the same claim always gets the same answer.
    pub fn judge_claim_unaided(&self, claim_text: &str, label: bool) -> bool {
        let correct = self.chance(
            &[self.tag(claim_text), 0xc1a],
            self.config.unaided_claim_accuracy,
        );
        if correct {
            label
        } else {
            !label
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_lake::{Column, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::key("district", DataType::Text),
            Column::new("incumbent", DataType::Text),
        ])
    }

    fn tuple(district: &str, incumbent: Value) -> Tuple {
        Tuple {
            id: 0,
            table: 0,
            row_index: 0,
            schema: schema(),
            values: vec![Value::text(district), incumbent],
            source: 0,
        }
    }

    fn world(n: usize) -> WorldModel {
        let mut w = WorldModel::new();
        for i in 0..n {
            w.add_fact(
                &format!("district {i}"),
                "incumbent",
                Value::text(format!("Person {i}")),
            );
        }
        w
    }

    #[test]
    fn imputation_is_deterministic() {
        let llm = SimLlm::new(SimLlmConfig::default(), world(50));
        let t = tuple("district 3", Value::Null);
        assert_eq!(
            llm.impute_cell(&t, "incumbent"),
            llm.impute_cell(&t, "incumbent")
        );
    }

    #[test]
    fn oracle_always_correct() {
        let llm = SimLlm::new(SimLlmConfig::oracle(1), world(50));
        for i in 0..50 {
            let t = tuple(&format!("district {i}"), Value::Null);
            assert_eq!(
                llm.impute_cell(&t, "incumbent"),
                Value::text(format!("Person {i}"))
            );
        }
    }

    #[test]
    fn knowledge_reliability_calibrates_accuracy() {
        let llm = SimLlm::new(
            SimLlmConfig {
                knowledge_reliability: 0.52,
                ..SimLlmConfig::default()
            },
            world(600),
        );
        let correct = (0..600)
            .filter(|i| {
                let t = tuple(&format!("district {i}"), Value::Null);
                llm.impute_cell(&t, "incumbent") == Value::text(format!("Person {i}"))
            })
            .count();
        let acc = correct as f64 / 600.0;
        assert!(
            (0.44..0.60).contains(&acc),
            "ungrounded accuracy {acc} far from 0.52"
        );
    }

    #[test]
    fn wrong_answers_are_plausible_domain_values() {
        let llm = SimLlm::new(
            SimLlmConfig {
                knowledge_reliability: 0.0,
                ..SimLlmConfig::default()
            },
            world(20),
        );
        let t = tuple("district 3", Value::Null);
        let v = llm.impute_cell(&t, "incumbent");
        assert_ne!(v, Value::text("Person 3"));
        // Drawn from the attribute domain, not fabricated.
        let s = v.to_string();
        assert!(s.starts_with("Person "), "unexpected hallucination: {s}");
    }

    #[test]
    fn complete_table_fills_all_nans() {
        let llm = SimLlm::new(SimLlmConfig::default(), world(10));
        let mut table = Table::new(5, "elections", schema(), 0);
        table
            .push_row(vec![Value::text("district 1"), Value::Null])
            .unwrap();
        table
            .push_row(vec![Value::text("district 2"), Value::text("Known Person")])
            .unwrap();
        let (done, transcript) = llm.complete_table(&table);
        assert!(!done.cell(0, 1).unwrap().is_null());
        assert_eq!(done.cell(1, 1).unwrap(), &Value::text("Known Person"));
        assert_eq!(transcript.messages.len(), 2);
        assert!(transcript.messages[0].content.contains("NaN"));
    }

    #[test]
    fn unaided_judgment_accuracy_near_config() {
        let llm = SimLlm::new(SimLlmConfig::default(), WorldModel::new());
        let correct = (0..1000)
            .filter(|i| {
                let label = i % 2 == 0;
                llm.judge_claim_unaided(&format!("claim number {i}"), label) == label
            })
            .count();
        let acc = correct as f64 / 1000.0;
        assert!(
            (0.48..0.60).contains(&acc),
            "unaided accuracy {acc} far from 0.54"
        );
    }

    #[test]
    fn chance_extremes() {
        let llm = SimLlm::new(SimLlmConfig::default(), WorldModel::new());
        assert!(!llm.chance(&[1], 0.0));
        assert!(llm.chance(&[1], 1.0));
    }

    #[test]
    fn entity_key_uses_key_columns_only() {
        let t = tuple("New York 1", Value::text("Otis Pike"));
        assert_eq!(entity_key(&t), "new york 1");
    }
}
