//! Generated data objects and verdicts.
//!
//! The paper's problem statement: given a generated *data object* `g` and a
//! data instance `x` from the lake, `verify(g, x) → verified | refuted |
//! not related`. This module defines both sides' types.

use std::fmt;
use verifai_claims::ClaimExpr;
use verifai_lake::{Tuple, Value};

/// The ternary verification outcome (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The evidence supports the generated data (encoded `0` in the paper).
    Verified,
    /// The evidence contradicts the generated data (encoded `1`).
    Refuted,
    /// The evidence can neither support nor refute it (encoded `2`).
    NotRelated,
    /// Verification did not complete (deadline exceeded or aborted); no
    /// judgement was made. Not part of the paper's ternary outcome — encoded
    /// `3` and treated as abstaining wherever verdicts aggregate.
    Unknown,
}

impl Verdict {
    /// The paper's integer encoding (`Unknown` extends it with `3`).
    pub fn code(self) -> u8 {
        match self {
            Verdict::Verified => 0,
            Verdict::Refuted => 1,
            Verdict::NotRelated => 2,
            Verdict::Unknown => 3,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Verified => "Verified",
            Verdict::Refuted => "Refuted",
            Verdict::NotRelated => "Not Related",
            Verdict::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// A generated tuple-cell imputation awaiting verification (Figure 1a).
#[derive(Debug, Clone, PartialEq)]
pub struct ImputedCell {
    /// Workload-unique id.
    pub id: u64,
    /// The tuple context: every cell except the imputed one is trusted input;
    /// the imputed column still holds `Null` here.
    pub tuple: Tuple,
    /// The column that was imputed.
    pub column: String,
    /// The value the generative model produced.
    pub value: Value,
}

impl ImputedCell {
    /// The tuple with the generated value filled in — what a downstream
    /// consumer would see.
    pub fn completed_tuple(&self) -> Tuple {
        let mut t = self.tuple.clone();
        if let Some(i) = t.schema.index_of(&self.column) {
            t.values[i] = self.value.clone();
        }
        t
    }
}

/// A generated textual claim awaiting verification (Figure 1b).
#[derive(Debug, Clone, PartialEq)]
pub struct TextClaim {
    /// Workload-unique id.
    pub id: u64,
    /// The claim text.
    pub text: String,
    /// Parsed/known semantics of the claim, when available. The simulated LLM
    /// uses this as its "language understanding"; local parsers may fail to
    /// recover it from `text`.
    pub expr: Option<ClaimExpr>,
    /// The caption context the claim mentions (its scope), when the reader
    /// recovered one. The scope-aware LLM verifier uses it to set aside
    /// out-of-scope tables as not related (Figure 4's E2); scope-blind local
    /// models ignore it.
    pub scope: Option<String>,
}

/// A generated data object `g` (paper §2: tuples/tables or text, produced by a
/// large language model).
#[derive(Debug, Clone, PartialEq)]
pub enum DataObject {
    /// An imputed tuple cell.
    ImputedCell(ImputedCell),
    /// A textual claim.
    TextClaim(TextClaim),
}

impl DataObject {
    /// Workload id of the object.
    pub fn id(&self) -> u64 {
        match self {
            DataObject::ImputedCell(c) => c.id,
            DataObject::TextClaim(c) => c.id,
        }
    }

    /// Human-readable rendering used in verification prompts and provenance.
    pub fn render(&self) -> String {
        match self {
            DataObject::ImputedCell(c) => {
                format!(
                    "tuple [{}] with generated {} = {}",
                    verifai_text::serialize_tuple(&c.tuple),
                    c.column,
                    c.value
                )
            }
            DataObject::TextClaim(c) => format!("claim: {}", c.text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_lake::{Column, DataType, Schema};

    fn cell() -> ImputedCell {
        ImputedCell {
            id: 7,
            tuple: Tuple {
                id: 0,
                table: 0,
                row_index: 0,
                schema: Schema::new(vec![
                    Column::key("district", DataType::Text),
                    Column::new("incumbent", DataType::Text),
                ]),
                values: vec![Value::text("NY-1"), Value::Null],
                source: 0,
            },
            column: "incumbent".into(),
            value: Value::text("Otis Pike"),
        }
    }

    #[test]
    fn verdict_codes_match_paper() {
        assert_eq!(Verdict::Verified.code(), 0);
        assert_eq!(Verdict::Refuted.code(), 1);
        assert_eq!(Verdict::NotRelated.code(), 2);
        assert_eq!(Verdict::NotRelated.to_string(), "Not Related");
    }

    #[test]
    fn completed_tuple_fills_generated_value() {
        let c = cell();
        let done = c.completed_tuple();
        assert_eq!(done.values[1], Value::text("Otis Pike"));
        // The original context is untouched.
        assert!(c.tuple.values[1].is_null());
    }

    #[test]
    fn render_mentions_generated_value() {
        let obj = DataObject::ImputedCell(cell());
        assert!(obj.render().contains("Otis Pike"));
        assert_eq!(obj.id(), 7);
    }
}
