//! Workload generation: the paper's two evaluation tasks.
//!
//! * **Tuple completion** (§4, 100 tuples): sample lake tuples whose subject
//!   entity has a text page, mask one stable non-key attribute, and record the
//!   relevance ground truth (the counterpart tuple and the entity page).
//! * **Textual claims** (§4, 1,300 TabFact claims): generate labelled claims
//!   over sampled lake tables via [`verifai_claims::ClaimGenerator`].

use crate::builder::GeneratedLake;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use verifai_claims::{Claim, ClaimGenConfig, ClaimGenerator};
use verifai_lake::value::normalize_str;
use verifai_lake::{DocId, KgEntityId, TableId, Tuple, TupleId, Value};

/// One tuple-completion task.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedTupleTask {
    /// Workload-unique id.
    pub id: u64,
    /// The tuple with the target cell masked to `Null`.
    pub masked: Tuple,
    /// The masked column.
    pub column: String,
    /// Ground-truth value of the masked cell.
    pub truth: Value,
    /// The original counterpart in the lake — the relevant tuple evidence
    /// (paper §4's relevance definition).
    pub counterpart: TupleId,
    /// Relevant text evidence: pages about entities in the tuple.
    pub relevant_docs: Vec<DocId>,
    /// Relevant knowledge-graph evidence: subgraphs of entities in the tuple
    /// (empty unless the lake was built with KG coverage).
    pub relevant_kg: Vec<KgEntityId>,
    /// The table the tuple came from.
    pub table: TableId,
}

/// Sample `n` completion tasks. Only candidates whose subject entity has a
/// text page are eligible, so every task has both tuple and text relevance
/// ground truth (mirroring how the paper's corpus links cells to pages).
pub fn completion_workload(lake: &GeneratedLake, n: usize, seed: u64) -> Vec<MaskedTupleTask> {
    // Stream constant decouples the workload stream from the builder stream
    // when the same seed is reused for both.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3a9f_11d7_55aa_90c3);
    let eligible: Vec<&crate::builder::CompletionCandidate> = lake
        .completion_candidates
        .iter()
        .filter(|c| lake.entity_docs.contains_key(&normalize_str(&c.entity)))
        .collect();
    let mut picked: Vec<&crate::builder::CompletionCandidate> = eligible.clone();
    picked.shuffle(&mut rng);
    picked.truncate(n);

    let mut tasks = Vec::with_capacity(picked.len());
    for (id, cand) in picked.into_iter().enumerate() {
        let tuple = lake
            .lake
            .tuple(cand.tuple_id)
            .expect("candidate tuple exists");
        let column = cand.maskable[rng.gen_range(0..cand.maskable.len())].clone();
        let col_idx = tuple
            .schema
            .index_of(&column)
            .expect("maskable column exists");
        let truth = tuple.values[col_idx].clone();
        let mut masked = tuple.clone();
        masked.values[col_idx] = Value::Null;
        let relevant_docs = lake
            .entity_docs
            .get(&normalize_str(&cand.entity))
            .copied()
            .into_iter()
            .collect();
        let relevant_kg = lake
            .entity_kg
            .get(&normalize_str(&cand.entity))
            .copied()
            .into_iter()
            .collect();
        tasks.push(MaskedTupleTask {
            id: id as u64,
            masked,
            column,
            truth,
            counterpart: cand.tuple_id,
            relevant_docs,
            relevant_kg,
            table: tuple.table,
        });
    }
    tasks
}

/// Generate `n` labelled claims over the lake's tables.
pub fn claim_workload(lake: &GeneratedLake, n: usize, config: ClaimGenConfig) -> Vec<Claim> {
    let mut generator = ClaimGenerator::new(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc1a1_5eed);
    let mut claims = Vec::with_capacity(n);
    let mut tables = lake.claim_tables.clone();
    tables.shuffle(&mut rng);
    let mut cursor = 0usize;
    // Round-robin over shuffled tables, a few claims each, until n reached.
    let mut stall = 0usize;
    while claims.len() < n && stall < tables.len() {
        let table_id = tables[cursor % tables.len()];
        cursor += 1;
        let table = lake.lake.table(table_id).expect("claim table exists");
        let produced = generator.generate(table, 2);
        if produced.is_empty() {
            stall += 1;
        } else {
            stall = 0;
        }
        for c in produced {
            if claims.len() >= n {
                break;
            }
            claims.push(c);
        }
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LakeSpec;
    use verifai_claims::{execute, ExecOutcome};

    fn lake() -> GeneratedLake {
        crate::builder::build(&LakeSpec::tiny(23))
    }

    #[test]
    fn completion_tasks_have_ground_truth() {
        let g = lake();
        let tasks = completion_workload(&g, 30, 5);
        assert!(!tasks.is_empty());
        for t in &tasks {
            // Masked cell is null; truth is not.
            let idx = t.masked.schema.index_of(&t.column).unwrap();
            assert!(t.masked.values[idx].is_null());
            assert!(!t.truth.is_null());
            // Counterpart in the lake carries the truth.
            let counterpart = g.lake.tuple(t.counterpart).unwrap();
            assert!(counterpart.values[idx].matches(&t.truth));
            // At least one relevant doc, and it is about the subject entity.
            assert!(!t.relevant_docs.is_empty());
            let doc = g.lake.doc(t.relevant_docs[0]).unwrap();
            let keys = t.masked.key_values();
            assert!(
                keys.iter().any(|k| doc.mentions(&k.to_string())),
                "doc '{}' not about task keys {:?}",
                doc.title,
                keys
            );
        }
    }

    #[test]
    fn completion_workload_deterministic_and_seed_sensitive() {
        let g = lake();
        let a = completion_workload(&g, 10, 5);
        let b = completion_workload(&g, 10, 5);
        assert_eq!(a, b);
        let c = completion_workload(&g, 10, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn claim_workload_labels_verified_by_execution() {
        let g = lake();
        let claims = claim_workload(&g, 60, ClaimGenConfig::default());
        assert_eq!(claims.len(), 60);
        for c in &claims {
            let table = g.lake.table(c.table).unwrap();
            let expected = if c.label {
                ExecOutcome::True
            } else {
                ExecOutcome::False
            };
            assert_eq!(execute(&c.expr, table), expected, "claim: {}", c.text);
        }
    }

    #[test]
    fn claim_workload_spreads_over_tables() {
        let g = lake();
        let claims = claim_workload(&g, 40, ClaimGenConfig::default());
        let mut tables: Vec<TableId> = claims.iter().map(|c| c.table).collect();
        tables.sort_unstable();
        tables.dedup();
        assert!(
            tables.len() > 10,
            "claims concentrated on {} tables",
            tables.len()
        );
    }
}
