//! Domain registry: the entity-relationship world behind the lake.

use verifai_lake::Value;

/// The five domains of the synthetic world, chosen to mirror the genres the
/// paper's figures draw on (elections for Figure 1a, films for Figure 1b,
/// championships for Figure 4, athlete statistics for the Michael Jordan
/// example in §2, cities as generic web-table filler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Congressional election tables (district / incumbent / party / ...).
    Elections,
    /// Sports championship result tables (team / points / rank).
    Championships,
    /// Film tables (film / director / lead actor / running time).
    Films,
    /// Athlete career tables (player / team / career points / position).
    Players,
    /// City tables (city / population / founded / county).
    Cities,
}

impl Domain {
    /// The noun used in entity-page intro sentences ("X is a ...").
    pub fn intro_noun(self) -> &'static str {
        match self {
            Domain::Elections => "congressional district",
            Domain::Championships => "collegiate athletic program",
            Domain::Films => "film",
            Domain::Players => "professional athlete",
            Domain::Cities => "city",
        }
    }

    /// Filler-sentence vocabulary: topical sentences that share vocabulary
    /// across documents of the same domain without asserting any fact. This
    /// shared vocabulary is what pulls wrong documents into the top-k.
    pub fn filler(self) -> &'static [&'static str] {
        match self {
            Domain::Elections => &[
                "The election drew national attention from both parties",
                "Turnout across the district was higher than in previous cycles",
                "Redistricting reshaped several constituencies before the vote",
                "Local newspapers covered the campaign extensively",
                "The seat had changed hands several times over the decades",
                "Candidates debated agricultural policy and taxation",
            ],
            Domain::Championships => &[
                "The championships were held over three days in June",
                "Several meet records were set during the competition",
                "Qualifying heats took place on the opening morning",
                "Coaches praised the conditions at the host stadium",
                "The team title came down to the final relay",
                "Athletes from across the conference participated",
            ],
            Domain::Films => &[
                "The film received mixed reviews from critics on release",
                "Principal photography took place over eleven weeks",
                "The screenplay went through several rewrites",
                "The soundtrack featured contemporary artists",
                "It performed modestly at the box office",
                "A restored print was screened decades later",
            ],
            Domain::Players => &[
                "The athlete was selected to several all star teams",
                "Injuries limited appearances during two seasons",
                "Commentators praised a consistent scoring touch",
                "The career spanned more than a decade at the top level",
                "A jersey retirement ceremony followed the final season",
                "Teammates described an unmatched work ethic",
            ],
            Domain::Cities => &[
                "The city grew rapidly after the railroad arrived",
                "A historic district preserves early architecture",
                "The local economy centers on manufacturing and trade",
                "Annual festivals draw visitors from the region",
                "The river crossing made the site a natural settlement",
                "Municipal government operates under a council manager system",
            ],
        }
    }
}

/// A subject entity with its stable facts — the unit a text page is written
/// about and the unit the world model stores knowledge for.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRecord {
    /// Canonical surface name (e.g. `"New York 3"`, `"The Golden Yard"`).
    pub name: String,
    /// Domain of the entity.
    pub domain: Domain,
    /// Stable facts: `(attribute, value)` pairs, functional per entity.
    pub facts: Vec<(String, Value)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_domain_has_filler_and_noun() {
        for d in [
            Domain::Elections,
            Domain::Championships,
            Domain::Films,
            Domain::Players,
            Domain::Cities,
        ] {
            assert!(!d.intro_noun().is_empty());
            assert!(d.filler().len() >= 4);
        }
    }

    #[test]
    fn filler_shares_vocabulary_within_domain_only() {
        // Sanity: election filler mentions elections, not box office.
        let e = Domain::Elections.filler().join(" ");
        assert!(e.contains("election"));
        assert!(!e.contains("box office"));
    }
}
