#![warn(missing_docs)]
//! # verifai-datagen
//!
//! The benchmark-data substrate: a synthetic multi-modal data lake with ground
//! truth known *by construction*.
//!
//! The paper evaluates on 19,498 web tables (TabFact + WikiTable-TURL; 269,622
//! tuples) and 13,796 Wikipedia-derived entity text files. Those corpora cannot
//! ship here, so this crate generates an equivalent: an explicit
//! entity-relationship *world* across five domains (congressional elections,
//! sports championships, films, athlete careers, cities — the same genres the
//! paper's figures draw from), serialized into:
//!
//! * **tables** organized in caption families (e.g. per-year election tables
//!   for each state) — the families create exactly the caption-level ambiguity
//!   that makes open-domain table retrieval hard;
//! * **entity text documents** with fact sentences and vocabulary-sharing
//!   filler — the ambiguity that keeps (tuple → text) recall well below
//!   (tuple → tuple) recall, as in the paper's Table 1;
//! * a **[`verifai_llm::WorldModel`]** holding every stable fact, so the
//!   simulated LLM's parametric knowledge and the lake's contents are two views
//!   of the same world;
//! * relevance annotations (counterpart tuples, entity pages, source tables)
//!   matching the paper's §4 relevance definitions.
//!
//! [`workload`] then derives the paper's two evaluation workloads: masked
//! tuples for completion (100 in the paper) and TabFact-style labelled claims
//! (1,300 in the paper).

pub mod builder;
pub mod docs;
pub mod domains;
pub mod names;
pub mod spec;
pub mod workload;

pub use builder::{build, CompletionCandidate, GeneratedLake, LakeSources};
pub use spec::LakeSpec;
pub use workload::{claim_workload, completion_workload, MaskedTupleTask};
