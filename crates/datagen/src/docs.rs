//! Entity text-page generation.
//!
//! Mirrors the paper's text corpus: pages obtained by resolving entity links in
//! table cells to Wikipedia. Each page carries (a) an intro sentence, (b) fact
//! sentences in the `"The {attr} of {entity} is {value}."` grammar that the
//! simulated LLM's reader understands, (c) domain-vocabulary filler shared
//! across pages, and (d) co-mentions of other entities. (c) and (d) are the
//! controlled ambiguity that keeps (tuple → text) retrieval hard — Table 1's
//! 0.58 recall row.

use crate::builder::Builder;
use crate::domains::EntityRecord;
use crate::spec::LakeSpec;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use verifai_lake::value::normalize_str;
use verifai_lake::{DocId, TextDocument};

/// Render one entity page. When `corrupt` is set, every fact sentence asserts
/// a plausible wrong value — the generative-model-leak scenario.
pub(crate) fn render_page(
    entity: &EntityRecord,
    others: &[&str],
    filler_sentences: usize,
    fact_coverage: f64,
    corrupt: bool,
    builder: &Builder,
    rng: &mut StdRng,
) -> String {
    let mut body = format!("{} is a {}. ", entity.name, entity.domain.intro_noun());
    for (attr, value) in &entity.facts {
        if !rng.gen_bool(fact_coverage) {
            continue;
        }
        let shown = if corrupt {
            builder.world.plausible_wrong(attr, value, rng.gen())
        } else {
            value.clone()
        };
        body.push_str(&format!("The {attr} of {} is {shown}. ", entity.name));
    }
    let filler = entity.domain.filler();
    for _ in 0..filler_sentences {
        body.push_str(filler[rng.gen_range(0..filler.len())]);
        body.push_str(". ");
    }
    for other in others {
        body.push_str(&format!("It is often discussed alongside {other}. "));
    }
    body
}

/// Generate pages for a coverage-sampled subset of entities, plus corrupted
/// pages for the trust experiments. Returns the relevance map (normalized
/// entity → page) and the corrupted page list.
pub(crate) fn generate_docs(
    b: &mut Builder,
    spec: &LakeSpec,
    rng: &mut StdRng,
) -> (HashMap<String, DocId>, Vec<(String, DocId)>) {
    let mut entity_docs = HashMap::new();
    let mut corrupted = Vec::new();
    let mut next_doc: DocId = 0;
    let entities = b.entities.clone();
    let all_names: Vec<&str> = entities.iter().map(|e| e.name.as_str()).collect();

    let mut covered_indices = Vec::new();
    for (i, entity) in entities.iter().enumerate() {
        if !rng.gen_bool(spec.doc_coverage) {
            continue;
        }
        covered_indices.push(i);
        let others: Vec<&str> = (0..spec.comentions)
            .map(|_| all_names[rng.gen_range(0..all_names.len())])
            .filter(|o| normalize_str(o) != normalize_str(&entity.name))
            .collect();
        let body = render_page(
            entity,
            &others,
            spec.filler_sentences,
            spec.fact_coverage,
            false,
            b,
            rng,
        );
        let doc = TextDocument::new(next_doc, entity.name.clone(), body, b.sources.wiki)
            .with_entities(others.iter().map(|s| s.to_string()).collect());
        b.lake.add_doc(doc).expect("doc ids unique");
        entity_docs.insert(normalize_str(&entity.name), next_doc);
        next_doc += 1;
    }

    // Corrupted pages: duplicate coverage for the first k covered entities,
    // attributed to the generative-model source.
    if let Some(genai) = b.sources.genai {
        for &i in covered_indices.iter().take(spec.corrupted_docs) {
            let entity = &entities[i];
            let body = render_page(entity, &[], spec.filler_sentences, 1.0, true, b, rng);
            let doc = TextDocument::new(next_doc, entity.name.clone(), body, genai);
            b.lake.add_doc(doc).expect("doc ids unique");
            corrupted.push((normalize_str(&entity.name), next_doc));
            next_doc += 1;
        }
    }
    (entity_docs, corrupted)
}

#[cfg(test)]
mod tests {
    use crate::builder::build;
    use crate::spec::LakeSpec;
    use verifai_llm::scan_fact;

    #[test]
    fn pages_contain_scannable_fact_sentences() {
        let lake = build(&LakeSpec::tiny(13));
        let mut scanned = 0;
        for entity in &lake.entities {
            let Some(&doc_id) = lake
                .entity_docs
                .get(&verifai_lake::value::normalize_str(&entity.name))
            else {
                continue;
            };
            let doc = lake.lake.doc(doc_id).unwrap();
            for (attr, value) in &entity.facts {
                let asserted = scan_fact(&doc.full_text(), &entity.name, attr)
                    .unwrap_or_else(|| panic!("page for {} lacks fact {attr}", entity.name));
                assert_eq!(asserted, value.normalized(), "entity {}", entity.name);
                scanned += 1;
            }
        }
        assert!(scanned > 50, "too few scannable facts: {scanned}");
    }

    #[test]
    fn corrupted_pages_assert_wrong_values() {
        let mut spec = LakeSpec::tiny(17);
        spec.corrupted_docs = 5;
        let lake = build(&spec);
        assert_eq!(lake.corrupted_docs.len(), 5);
        let genai = lake.sources.genai.unwrap();
        for (entity_norm, doc_id) in &lake.corrupted_docs {
            let doc = lake.lake.doc(*doc_id).unwrap();
            assert_eq!(doc.source, genai);
            let entity = lake
                .entities
                .iter()
                .find(|e| &verifai_lake::value::normalize_str(&e.name) == entity_norm)
                .unwrap();
            // At least one fact sentence must contradict the world.
            let mut contradictions = 0;
            for (attr, value) in &entity.facts {
                if let Some(asserted) = scan_fact(&doc.full_text(), &entity.name, attr) {
                    if asserted != value.normalized() {
                        contradictions += 1;
                    }
                }
            }
            assert!(
                contradictions > 0,
                "corrupted page for {entity_norm} agrees with world"
            );
        }
    }

    #[test]
    fn coverage_controls_doc_count() {
        let mut lo = LakeSpec::tiny(19);
        lo.doc_coverage = 0.1;
        let mut hi = LakeSpec::tiny(19);
        hi.doc_coverage = 0.9;
        assert!(build(&lo).lake.num_docs() < build(&hi).lake.num_docs());
    }
}
