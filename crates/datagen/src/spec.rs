//! Lake-generation configuration and scale presets.

/// Configuration of the synthetic lake.
///
/// Table counts are per *family pattern*; the builder derives total table and
/// tuple counts from them. Three presets cover testing, benchmarking, and
/// paper-scale reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LakeSpec {
    /// Master seed for everything the builder draws.
    pub seed: u64,
    /// Number of states with election table families.
    pub election_states: usize,
    /// Election years per state (tables per family).
    pub election_years: usize,
    /// Districts per state (rows per election table).
    pub districts_per_state: usize,
    /// Championship series (each a caption family).
    pub championship_series: usize,
    /// Years per championship series.
    pub championship_years: usize,
    /// Teams per championship table.
    pub teams_per_championship: usize,
    /// Film tables (one per (genre, year) pair).
    pub film_tables: usize,
    /// Films per film table.
    pub films_per_table: usize,
    /// Athlete career tables (one per league snapshot).
    pub player_tables: usize,
    /// Players per career table.
    pub players_per_table: usize,
    /// City tables (one per region).
    pub city_tables: usize,
    /// Cities per table.
    pub cities_per_table: usize,
    /// Fraction of subject entities that get a text page.
    pub doc_coverage: f64,
    /// Filler sentences per document (vocabulary-sharing noise).
    pub filler_sentences: usize,
    /// Other entities co-mentioned per document (retrieval confusion).
    pub comentions: usize,
    /// Probability that an entity page states each individual fact. Real
    /// entity pages rarely spell out every attribute of every tuple the entity
    /// appears in; lowering this both weakens the lexical match between tuple
    /// queries and their relevant page (Table 1's hard (tuple → text) row) and
    /// creates genuinely uninformative text evidence for the Verifier.
    pub fact_coverage: f64,
    /// Documents attributed to a *generative-model* source whose fact
    /// sentences are corrupted — fuel for the trust experiments.
    pub corrupted_docs: usize,
    /// Fraction of subject entities that also get a knowledge-graph subgraph
    /// (the §5 extension modality).
    pub kg_coverage: f64,
}

impl LakeSpec {
    /// Tiny preset for unit/integration tests: builds in milliseconds.
    pub fn tiny(seed: u64) -> LakeSpec {
        LakeSpec {
            seed,
            election_states: 3,
            election_years: 3,
            districts_per_state: 6,
            championship_series: 2,
            championship_years: 3,
            teams_per_championship: 8,
            film_tables: 6,
            films_per_table: 6,
            player_tables: 3,
            players_per_table: 8,
            city_tables: 3,
            cities_per_table: 8,
            doc_coverage: 0.8,
            filler_sentences: 3,
            comentions: 2,
            fact_coverage: 1.0,
            corrupted_docs: 0,
            kg_coverage: 0.6,
        }
    }

    /// Small preset: the default for benches and examples (≈ 1.5k tables).
    pub fn small(seed: u64) -> LakeSpec {
        LakeSpec {
            seed,
            election_states: 24,
            election_years: 10,
            districts_per_state: 12,
            championship_series: 8,
            championship_years: 20,
            teams_per_championship: 12,
            film_tables: 400,
            films_per_table: 12,
            player_tables: 100,
            players_per_table: 15,
            city_tables: 60,
            cities_per_table: 15,
            doc_coverage: 0.35,
            filler_sentences: 9,
            comentions: 9,
            fact_coverage: 0.40,
            corrupted_docs: 0,
            kg_coverage: 0.25,
        }
    }

    /// Paper-scale preset (≈ 19.5k tables / ≈ 270k tuples / ≈ 13.8k docs,
    /// matching §4's corpus sizes). Building takes tens of seconds.
    pub fn paper_scale(seed: u64) -> LakeSpec {
        LakeSpec {
            seed,
            election_states: 30,
            election_years: 40,
            districts_per_state: 15,
            championship_series: 8,
            championship_years: 60,
            teams_per_championship: 14,
            film_tables: 8_000,
            films_per_table: 14,
            player_tables: 6_000,
            players_per_table: 14,
            city_tables: 3_340,
            cities_per_table: 14,
            doc_coverage: 0.057,
            filler_sentences: 9,
            comentions: 9,
            fact_coverage: 0.40,
            corrupted_docs: 0,
            kg_coverage: 0.05,
        }
    }

    /// Expected table count under this spec.
    pub fn expected_tables(&self) -> usize {
        self.election_states * self.election_years
            + self.championship_series * self.championship_years
            + self.film_tables
            + self.player_tables
            + self.city_tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_up() {
        let t = LakeSpec::tiny(0).expected_tables();
        let s = LakeSpec::small(0).expected_tables();
        let p = LakeSpec::paper_scale(0).expected_tables();
        assert!(t < s && s < p);
        // Paper-scale table count within 10% of 19,498.
        assert!((17_500..21_500).contains(&p), "paper-scale tables: {p}");
    }
}
