//! Lake assembly: generates the tables, registers facts, and tracks relevance.

use crate::docs::generate_docs;
use crate::domains::{Domain, EntityRecord};
use crate::names;
use crate::spec::LakeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use verifai_lake::value::normalize_str;
use verifai_lake::{
    Column, DataLake, DataType, DocId, KgEntity, KgEntityId, Schema, SourceId, SourceOrigin, Table,
    TableId, TupleId, Value,
};
use verifai_llm::WorldModel;

/// The registered sources of the generated lake, mirroring the paper's corpus
/// composition (TabFact tables, WikiTable-TURL tables, Wikipedia text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LakeSources {
    /// Curated benchmark tables.
    pub tabfact: SourceId,
    /// Uncurated web tables.
    pub turl: SourceId,
    /// Encyclopedia text pages.
    pub wiki: SourceId,
    /// Curated knowledge-graph triples (the §5 extension modality).
    pub wikidata: SourceId,
    /// Generative-model output that leaked into the lake (only registered when
    /// [`LakeSpec::corrupted_docs`] > 0).
    pub genai: Option<SourceId>,
}

/// A lake tuple eligible for the tuple-completion workload: its subject entity
/// has stable facts (and possibly a text page).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionCandidate {
    /// The lake tuple.
    pub tuple_id: TupleId,
    /// Subject entity name (raw surface form).
    pub entity: String,
    /// Columns whose values are stable facts and may be masked.
    pub maskable: Vec<String>,
}

/// The generated multi-modal lake plus all ground-truth bookkeeping.
#[derive(Debug)]
pub struct GeneratedLake {
    /// The data lake itself.
    pub lake: DataLake,
    /// Every stable fact, for the simulated LLM's parametric knowledge.
    pub world: WorldModel,
    /// Subject entities with their facts.
    pub entities: Vec<EntityRecord>,
    /// Normalized entity name → its text page (relevance ground truth for the
    /// (tuple → text) retrieval of Table 1).
    pub entity_docs: HashMap<String, DocId>,
    /// Corrupted (generative-source) documents, per entity.
    pub corrupted_docs: Vec<(String, DocId)>,
    /// Normalized entity name → its knowledge-graph subgraph.
    pub entity_kg: HashMap<String, KgEntityId>,
    /// Tuples usable in the completion workload.
    pub completion_candidates: Vec<CompletionCandidate>,
    /// Tables usable as claim sources.
    pub claim_tables: Vec<TableId>,
    /// Registered sources.
    pub sources: LakeSources,
    /// The spec this lake was built from.
    pub spec: LakeSpec,
}

/// Internal builder state shared by the domain generators.
pub(crate) struct Builder {
    pub lake: DataLake,
    pub world: WorldModel,
    pub entities: Vec<EntityRecord>,
    pub completion_candidates: Vec<CompletionCandidate>,
    pub claim_tables: Vec<TableId>,
    pub sources: LakeSources,
    next_table: TableId,
    used_names: HashSet<String>,
}

impl Builder {
    fn next_table_id(&mut self) -> TableId {
        let id = self.next_table;
        self.next_table += 1;
        id
    }

    /// Make a name globally unique (normalized comparison) by suffixing a
    /// counter — the deterministic equivalent of disambiguation pages.
    fn unique(&mut self, base: String) -> String {
        if self.used_names.insert(normalize_str(&base)) {
            return base;
        }
        for n in 2.. {
            let candidate = format!("{base} {n}");
            if self.used_names.insert(normalize_str(&candidate)) {
                return candidate;
            }
        }
        unreachable!()
    }

    /// Insert a finished table; alternates the two table sources like the
    /// paper's TabFact/TURL mix.
    fn insert_table(&mut self, table: Table) -> std::ops::Range<TupleId> {
        let id = table.id;
        let range = self
            .lake
            .add_table(table)
            .expect("builder assigns unique table ids");
        self.claim_tables.push(id);
        range
    }

    fn table_source(&self, parity: u64) -> SourceId {
        if parity.is_multiple_of(2) {
            self.sources.tabfact
        } else {
            self.sources.turl
        }
    }

    /// Register an entity's facts into the world model and the registry.
    fn register_entity(&mut self, record: EntityRecord) {
        for (attr, value) in &record.facts {
            self.world.add_fact(&record.name, attr, value.clone());
        }
        self.entities.push(record);
    }
}

/// Build a lake from a spec. Fully deterministic per seed.
pub fn build(spec: &LakeSpec) -> GeneratedLake {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut lake = DataLake::new();
    let tabfact = lake.add_source("tabfact", SourceOrigin::CuratedCorpus);
    let turl = lake.add_source("wikitable-turl", SourceOrigin::WebTables);
    let wiki = lake.add_source("wikipedia", SourceOrigin::Encyclopedia);
    let wikidata = lake.add_source("wikidata", SourceOrigin::CuratedCorpus);
    let genai = (spec.corrupted_docs > 0)
        .then(|| lake.add_source("genai-leak", SourceOrigin::GenerativeModel));

    let mut b = Builder {
        lake,
        world: WorldModel::new(),
        entities: Vec::new(),
        completion_candidates: Vec::new(),
        claim_tables: Vec::new(),
        sources: LakeSources {
            tabfact,
            turl,
            wiki,
            wikidata,
            genai,
        },
        next_table: 0,
        used_names: HashSet::new(),
    };

    elections(&mut b, spec, &mut rng);
    championships(&mut b, spec, &mut rng);
    films(&mut b, spec, &mut rng);
    players(&mut b, spec, &mut rng);
    cities(&mut b, spec, &mut rng);

    let (entity_docs, corrupted_docs) = generate_docs(&mut b, spec, &mut rng);
    let entity_kg = generate_kg(&mut b, spec, &mut rng);

    GeneratedLake {
        lake: b.lake,
        world: b.world,
        entities: b.entities,
        entity_docs,
        corrupted_docs,
        entity_kg,
        completion_candidates: b.completion_candidates,
        claim_tables: b.claim_tables,
        sources: b.sources,
        spec: *spec,
    }
}

/// Election families: one caption family per state, one table per year. The
/// per-district facts (incumbent, party, first elected) are stable across
/// years, so they are functional and maskable; the votes column varies per
/// year, giving each table in the family a distinct body.
fn elections(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) {
    let schema = || {
        Schema::new(vec![
            Column::key("district", DataType::Text),
            Column::new("incumbent", DataType::Text),
            Column::new("party", DataType::Text),
            Column::new("first elected", DataType::Int),
            Column::new("votes", DataType::Int),
        ])
    };
    for s in 0..spec.election_states {
        let state = names::STATES[s % names::STATES.len()];
        // District registry with stable facts.
        let mut districts = Vec::with_capacity(spec.districts_per_state);
        for d in 0..spec.districts_per_state {
            let district = format!("{state} {}", d + 1);
            let incumbent = b.unique(names::person(rng));
            let party = names::pick(rng, names::PARTIES).to_string();
            let first_elected = 1936 + rng.gen_range(0..20) as i64;
            b.register_entity(EntityRecord {
                name: district.clone(),
                domain: Domain::Elections,
                facts: vec![
                    ("incumbent".into(), Value::text(incumbent.clone())),
                    ("party".into(), Value::text(party.clone())),
                    ("first elected".into(), Value::Int(first_elected)),
                ],
            });
            districts.push((district, incumbent, party, first_elected));
        }
        for y in 0..spec.election_years {
            let year = 1952 + 2 * y;
            let id = b.next_table_id();
            let caption =
                format!("{year} United States House of Representatives elections in {state}");
            let mut table = Table::new(id, caption, schema(), b.table_source(id));
            for (district, incumbent, party, first_elected) in &districts {
                table
                    .push_row(vec![
                        Value::text(district.clone()),
                        Value::text(incumbent.clone()),
                        Value::text(party.clone()),
                        Value::Int(*first_elected),
                        Value::Int(rng.gen_range(40_000..180_000)),
                    ])
                    .expect("schema arity");
            }
            let range = b.insert_table(table);
            for (i, tuple_id) in range.enumerate() {
                b.completion_candidates.push(CompletionCandidate {
                    tuple_id,
                    entity: districts[i].0.clone(),
                    maskable: vec!["incumbent".into(), "party".into(), "first elected".into()],
                });
            }
        }
    }
}

/// Championship families (Figure 4's genre): fixed team roster per series,
/// year-varying points. Claims only — points are not stable facts.
fn championships(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) {
    // Real web tables are schema-heterogeneous: half the series call the
    // column "points", the other half "score". A claim about "points" cannot
    // bind against a "score" table — the Figure 4 not-related mechanism.
    let schema = |score_col: &str| {
        Schema::new(vec![
            Column::key("team", DataType::Text),
            Column::new(score_col, DataType::Int),
            Column::new("rank", DataType::Int),
        ])
    };
    for s in 0..spec.championship_series {
        let series = names::SERIES[s % names::SERIES.len()];
        let score_col = if s % 2 == 0 { "points" } else { "score" };
        let teams: Vec<&str> = (0..spec.teams_per_championship)
            .map(|i| names::COLLEGES[(s * 7 + i) % names::COLLEGES.len()])
            .collect();
        for y in 0..spec.championship_years {
            let year = 1948 + y;
            let id = b.next_table_id();
            let caption = format!("{year} {series} Championships");
            let mut table = Table::new(id, caption, schema(score_col), b.table_source(id));
            // Year-specific points; small values make count/aggregate claims
            // natural (several teams share low scores, as in Figure 4).
            let mut scored: Vec<(&str, i64)> =
                teams.iter().map(|t| (*t, rng.gen_range(0..50))).collect();
            scored.sort_by_key(|&(_, points)| std::cmp::Reverse(points));
            for (rank, (team, points)) in scored.iter().enumerate() {
                table
                    .push_row(vec![
                        Value::text(*team),
                        Value::Int(*points),
                        Value::Int(rank as i64 + 1),
                    ])
                    .expect("schema arity");
            }
            b.insert_table(table);
        }
    }
}

/// Film tables: one per (genre, year); films are globally unique entities with
/// stable facts.
fn films(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) {
    let schema = || {
        Schema::new(vec![
            Column::key("film", DataType::Text),
            Column::new("director", DataType::Text),
            Column::new("lead actor", DataType::Text),
            Column::new("running time", DataType::Int),
            Column::new("year", DataType::Int),
        ])
    };
    for t in 0..spec.film_tables {
        let genre = names::GENRES[t % names::GENRES.len()];
        let year = 1950 + (t / names::GENRES.len()) % 72;
        let id = b.next_table_id();
        let caption = format!("List of {genre} films of {year}");
        let mut table = Table::new(id, caption, schema(), b.table_source(id));
        let mut rows = Vec::with_capacity(spec.films_per_table);
        for _ in 0..spec.films_per_table {
            let film = b.unique(names::film_title(rng));
            let director = names::person(rng);
            let actor = names::person(rng);
            let runtime = rng.gen_range(80..160) as i64;
            b.register_entity(EntityRecord {
                name: film.clone(),
                domain: Domain::Films,
                facts: vec![
                    ("director".into(), Value::text(director.clone())),
                    ("lead actor".into(), Value::text(actor.clone())),
                    ("running time".into(), Value::Int(runtime)),
                ],
            });
            rows.push((film, director, actor, runtime));
        }
        for (film, director, actor, runtime) in &rows {
            table
                .push_row(vec![
                    Value::text(film.clone()),
                    Value::text(director.clone()),
                    Value::text(actor.clone()),
                    Value::Int(*runtime),
                    Value::Int(year as i64),
                ])
                .expect("schema arity");
        }
        let range = b.insert_table(table);
        for (i, tuple_id) in range.enumerate() {
            b.completion_candidates.push(CompletionCandidate {
                tuple_id,
                entity: rows[i].0.clone(),
                maskable: vec![
                    "director".into(),
                    "lead actor".into(),
                    "running time".into(),
                ],
            });
        }
    }
}

/// Athlete career tables: players are unique entities with stable facts.
fn players(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) {
    let schema = || {
        Schema::new(vec![
            Column::key("player", DataType::Text),
            Column::new("team", DataType::Text),
            Column::new("career points", DataType::Int),
            Column::new("position", DataType::Text),
        ])
    };
    for t in 0..spec.player_tables {
        let league = names::LEAGUES[t % names::LEAGUES.len()];
        let edition = t / names::LEAGUES.len() + 1;
        let id = b.next_table_id();
        let caption = format!("List of {league} career scoring leaders (list {edition})");
        let mut table = Table::new(id, caption, schema(), b.table_source(id));
        let mut rows = Vec::with_capacity(spec.players_per_table);
        for _ in 0..spec.players_per_table {
            let player = b.unique(names::person(rng));
            let team = names::pick(rng, names::COLLEGES).to_string();
            let points = rng.gen_range(2_000..40_000) as i64;
            let position = names::pick(rng, names::POSITIONS).to_string();
            b.register_entity(EntityRecord {
                name: player.clone(),
                domain: Domain::Players,
                facts: vec![
                    ("team".into(), Value::text(team.clone())),
                    ("career points".into(), Value::Int(points)),
                    ("position".into(), Value::text(position.clone())),
                ],
            });
            rows.push((player, team, points, position));
        }
        for (player, team, points, position) in &rows {
            table
                .push_row(vec![
                    Value::text(player.clone()),
                    Value::text(team.clone()),
                    Value::Int(*points),
                    Value::text(position.clone()),
                ])
                .expect("schema arity");
        }
        let range = b.insert_table(table);
        for (i, tuple_id) in range.enumerate() {
            b.completion_candidates.push(CompletionCandidate {
                tuple_id,
                entity: rows[i].0.clone(),
                maskable: vec!["team".into(), "career points".into(), "position".into()],
            });
        }
    }
}

/// City tables: cities are unique entities with stable facts.
fn cities(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) {
    let schema = || {
        Schema::new(vec![
            Column::key("city", DataType::Text),
            Column::new("county", DataType::Text),
            Column::new("population", DataType::Int),
            Column::new("founded", DataType::Int),
        ])
    };
    for t in 0..spec.city_tables {
        let region = names::STATES[t % names::STATES.len()];
        let part = t / names::STATES.len() + 1;
        let id = b.next_table_id();
        let caption = format!("List of cities in {region} (part {part})");
        let mut table = Table::new(id, caption, schema(), b.table_source(id));
        let mut rows = Vec::with_capacity(spec.cities_per_table);
        for _ in 0..spec.cities_per_table {
            let city = b.unique(names::city(rng));
            let county = format!("{} County", names::pick(rng, names::LAST_NAMES));
            let population = rng.gen_range(5_000..2_000_000) as i64;
            let founded = 1700 + rng.gen_range(0..280) as i64;
            b.register_entity(EntityRecord {
                name: city.clone(),
                domain: Domain::Cities,
                facts: vec![
                    ("county".into(), Value::text(county.clone())),
                    ("population".into(), Value::Int(population)),
                    ("founded".into(), Value::Int(founded)),
                ],
            });
            rows.push((city, county, population, founded));
        }
        for (city, county, population, founded) in &rows {
            table
                .push_row(vec![
                    Value::text(city.clone()),
                    Value::text(county.clone()),
                    Value::Int(*population),
                    Value::Int(*founded),
                ])
                .expect("schema arity");
        }
        let range = b.insert_table(table);
        for (i, tuple_id) in range.enumerate() {
            b.completion_candidates.push(CompletionCandidate {
                tuple_id,
                entity: rows[i].0.clone(),
                maskable: vec!["county".into(), "population".into(), "founded".into()],
            });
        }
    }
}

/// Knowledge-graph subgraphs (§5 extension): a coverage-sampled subset of
/// subject entities gets a [`KgEntity`] asserting its stable facts as triples,
/// plus a couple of cross-reference edges to other entities for realism.
fn generate_kg(b: &mut Builder, spec: &LakeSpec, rng: &mut StdRng) -> HashMap<String, KgEntityId> {
    let mut entity_kg = HashMap::new();
    if spec.kg_coverage <= 0.0 {
        return entity_kg;
    }
    let names: Vec<String> = b.entities.iter().map(|e| e.name.clone()).collect();
    let mut next_id: KgEntityId = 0;
    let records = b.entities.clone();
    for record in &records {
        if !rng.gen_bool(spec.kg_coverage) {
            continue;
        }
        let mut entity = KgEntity::new(next_id, record.name.clone(), b.sources.wikidata);
        for (attr, value) in &record.facts {
            entity.assert_fact(attr, value.clone());
        }
        // Cross-reference edges: the subgraph mentions nearby entities, like
        // real KG neighbourhoods do.
        for _ in 0..2 {
            let other = &names[rng.gen_range(0..names.len())];
            if normalize_str(other) != normalize_str(&record.name) {
                entity.triples.push(verifai_lake::Triple::new(
                    record.name.clone(),
                    "related to",
                    Value::text(other.clone()),
                ));
            }
        }
        b.lake.add_kg_entity(entity).expect("kg ids unique");
        entity_kg.insert(normalize_str(&record.name), next_id);
        next_id += 1;
    }
    entity_kg
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_llm::entity_key;

    #[test]
    fn tiny_lake_counts_match_spec() {
        let spec = LakeSpec::tiny(42);
        let lake = build(&spec);
        assert_eq!(lake.lake.num_tables(), spec.expected_tables());
        assert!(lake.lake.num_tuples() > 100);
        assert!(lake.lake.num_docs() > 30, "docs: {}", lake.lake.num_docs());
        assert!(!lake.completion_candidates.is_empty());
        assert_eq!(lake.claim_tables.len(), lake.lake.num_tables());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(&LakeSpec::tiny(1));
        let b = build(&LakeSpec::tiny(1));
        assert_eq!(a.lake.num_tuples(), b.lake.num_tuples());
        assert_eq!(a.lake.stats(), b.lake.stats());
        let ta = a.lake.table(3).unwrap();
        let tb = b.lake.table(3).unwrap();
        assert_eq!(ta, tb);
        let c = build(&LakeSpec::tiny(2));
        assert_ne!(a.lake.table(3).unwrap(), c.lake.table(3).unwrap());
    }

    #[test]
    fn world_model_agrees_with_lake_tuples() {
        let lake = build(&LakeSpec::tiny(7));
        let mut checked = 0;
        for cand in lake.completion_candidates.iter().take(50) {
            let tuple = lake.lake.tuple(cand.tuple_id).unwrap();
            let entity = entity_key(&tuple);
            for col in &cand.maskable {
                let lake_value = tuple.get_fuzzy(col).unwrap();
                let world_value = lake
                    .world
                    .truth(&entity, col)
                    .unwrap_or_else(|| panic!("world missing fact ({entity}, {col})"));
                assert!(
                    lake_value.matches(world_value),
                    "({entity}, {col}): lake {lake_value:?} vs world {world_value:?}"
                );
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn entity_names_are_unique() {
        let lake = build(&LakeSpec::tiny(3));
        let mut names: Vec<String> = lake
            .entities
            .iter()
            .map(|e| normalize_str(&e.name))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate entity names");
    }

    #[test]
    fn caption_families_exist() {
        // Claim retrieval difficulty depends on caption-sharing families.
        let lake = build(&LakeSpec::tiny(5));
        let mut by_family: HashMap<String, usize> = HashMap::new();
        for t in lake.lake.tables() {
            // Family key: caption with digits stripped.
            let family: String = t.caption.chars().filter(|c| !c.is_ascii_digit()).collect();
            *by_family.entry(family).or_insert(0) += 1;
        }
        let max_family = by_family.values().max().copied().unwrap_or(0);
        assert!(
            max_family >= 3,
            "no caption families (max size {max_family})"
        );
    }

    #[test]
    fn championship_rank_consistent_with_points() {
        let lake = build(&LakeSpec::tiny(9));
        // Find a championship table (captions end with "Championships").
        let table = lake
            .lake
            .tables()
            .find(|t| t.caption.ends_with("Championships"))
            .expect("championship tables exist");
        let points: Vec<i64> = table
            .column_values(1)
            .map(|v| v.as_i64().unwrap())
            .collect();
        let ranks: Vec<i64> = table
            .column_values(2)
            .map(|v| v.as_i64().unwrap())
            .collect();
        for w in points.windows(2) {
            assert!(w[0] >= w[1], "points not sorted descending");
        }
        assert_eq!(ranks, (1..=points.len() as i64).collect::<Vec<_>>());
    }

    #[test]
    fn kg_subgraphs_assert_world_facts() {
        let lake = build(&LakeSpec::tiny(15));
        assert!(
            lake.lake.num_kg_entities() > 20,
            "kg: {}",
            lake.lake.num_kg_entities()
        );
        let mut checked = 0;
        for record in &lake.entities {
            let Some(&kg_id) = lake.entity_kg.get(&normalize_str(&record.name)) else {
                continue;
            };
            let entity = lake.lake.kg_entity(kg_id).unwrap();
            assert!(entity.is_about(&record.name));
            assert_eq!(entity.source, lake.sources.wikidata);
            for (attr, value) in &record.facts {
                let object = entity
                    .object_of(attr)
                    .unwrap_or_else(|| panic!("kg for {} lacks {attr}", record.name));
                assert!(
                    object.matches(value),
                    "kg fact mismatch for {}",
                    record.name
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "too few kg facts checked: {checked}");
    }

    #[test]
    fn sources_partition_tables() {
        let lake = build(&LakeSpec::tiny(11));
        let mut counts = HashMap::new();
        for t in lake.lake.tables() {
            *counts.entry(t.source).or_insert(0usize) += 1;
        }
        assert!(counts[&lake.sources.tabfact] > 0);
        assert!(counts[&lake.sources.turl] > 0);
    }
}
