//! Deterministic name pools.
//!
//! Entity names are assembled from fixed pools. Pools are intentionally small
//! relative to the number of entities generated so that names *collide in
//! parts* (shared surnames, shared title words) — the lexical ambiguity that
//! makes retrieval realistically hard.

use rand::Rng;

/// First names.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Lisa",
    "Daniel",
    "Nancy",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Carol",
    "Kevin",
    "Amanda",
    "Brian",
    "Dorothy",
    "George",
    "Melissa",
    "Edward",
    "Deborah",
    "Ronald",
    "Stephanie",
    "Timothy",
    "Rebecca",
    "Jason",
    "Sharon",
    "Jeffrey",
    "Laura",
    "Ryan",
    "Cynthia",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Pike",
    "Wainwright",
    "Grover",
    "Halpern",
    "Ostertag",
    "Derounian",
    "Becker",
];

/// US state names used for election families and city regions.
pub const STATES: &[&str] = &[
    "New York",
    "California",
    "Texas",
    "Ohio",
    "Illinois",
    "Pennsylvania",
    "Michigan",
    "Georgia",
    "Virginia",
    "Massachusetts",
    "Indiana",
    "Missouri",
    "Wisconsin",
    "Tennessee",
    "Maryland",
    "Minnesota",
    "Colorado",
    "Alabama",
    "Louisiana",
    "Kentucky",
    "Oregon",
    "Oklahoma",
    "Connecticut",
    "Iowa",
    "Kansas",
    "Arkansas",
    "Nevada",
    "Utah",
    "Mississippi",
    "Nebraska",
];

/// Political parties.
pub const PARTIES: &[&str] = &[
    "Democratic",
    "Republican",
    "Independent",
    "Liberal",
    "Progressive",
];

/// Adjectives for film titles.
pub const FILM_ADJECTIVES: &[&str] = &[
    "Silent", "Burning", "Hidden", "Broken", "Golden", "Midnight", "Crimson", "Electric", "Savage",
    "Gentle", "Distant", "Frozen", "Restless", "Velvet", "Hollow", "Shining",
];

/// Nouns for film titles.
pub const FILM_NOUNS: &[&str] = &[
    "Yard", "River", "Empire", "Summer", "Horizon", "Garden", "Engine", "Harbor", "Letter",
    "Mirror", "Kingdom", "Voyage", "Stranger", "Season", "Tempest", "Crossing",
];

/// Film genres.
pub const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "dance",
    "romance",
    "western",
    "science fiction",
    "crime",
];

/// University / college names for championship teams.
pub const COLLEGES: &[&str] = &[
    "Kansas",
    "Brown",
    "Oregon",
    "Yale",
    "Stanford",
    "Princeton",
    "Auburn",
    "Baylor",
    "Tulane",
    "Purdue",
    "Cornell",
    "Rice",
    "Duke",
    "Villanova",
    "Fordham",
    "Colgate",
    "Amherst",
    "Drake",
    "Butler",
    "Creighton",
    "Gonzaga",
    "Xavier",
    "Denison",
    "Oberlin",
];

/// Sports series for championship families.
pub const SERIES: &[&str] = &[
    "NCAA Track and Field",
    "NCAA Swimming",
    "NCAA Cross Country",
    "NCAA Fencing",
    "NCAA Gymnastics",
    "NCAA Rowing",
    "NCAA Wrestling",
    "NCAA Skiing",
];

/// Professional leagues for athlete career tables.
pub const LEAGUES: &[&str] = &["NBA", "NFL", "MLB", "NHL", "MLS", "WNBA", "CFL", "USFL"];

/// Player positions.
pub const POSITIONS: &[&str] = &[
    "guard",
    "forward",
    "center",
    "pitcher",
    "catcher",
    "goalkeeper",
    "striker",
    "defender",
];

/// City name fragments.
pub const CITY_PREFIXES: &[&str] = &[
    "Spring", "River", "Oak", "Maple", "Cedar", "Lake", "Fair", "Green", "Glen", "Brook", "Clear",
    "Stone", "Ash", "Mill", "West", "North",
];

/// City name suffixes.
pub const CITY_SUFFIXES: &[&str] = &[
    "field", "ton", "ville", "wood", "port", "burg", "haven", "dale", "mont", "side",
];

/// Pick a random element of a pool.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A person name from the pools.
pub fn person<R: Rng>(rng: &mut R) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A film title, occasionally with the `{Verb} the {Noun}` shape of the
/// paper's running example.
pub fn film_title<R: Rng>(rng: &mut R) -> String {
    if rng.gen_bool(0.2) {
        let verbs = ["Stomp", "Chase", "Cross", "Brave", "Hold"];
        format!("{} the {}", pick(rng, &verbs), pick(rng, FILM_NOUNS))
    } else {
        format!(
            "The {} {}",
            pick(rng, FILM_ADJECTIVES),
            pick(rng, FILM_NOUNS)
        )
    }
}

/// A city name.
pub fn city<R: Rng>(rng: &mut R) -> String {
    format!("{}{}", pick(rng, CITY_PREFIXES), pick(rng, CITY_SUFFIXES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_are_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (person(&mut rng), film_title(&mut rng), city(&mut rng))
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn names_collide_in_parts() {
        // With pools this small, 200 people must share surnames — the intended
        // ambiguity property.
        let mut rng = StdRng::seed_from_u64(1);
        let people: Vec<String> = (0..200).map(|_| person(&mut rng)).collect();
        let mut surnames: Vec<&str> = people
            .iter()
            .map(|p| p.split(' ').nth(1).unwrap())
            .collect();
        surnames.sort_unstable();
        surnames.dedup();
        assert!(
            surnames.len() < 70,
            "no surname collisions in {} people",
            200
        );
    }

    #[test]
    fn pools_are_nonempty_and_distinct() {
        for pool in [FIRST_NAMES, LAST_NAMES, STATES, PARTIES, COLLEGES, SERIES] {
            assert!(!pool.is_empty());
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len(), "duplicate entries in pool");
        }
    }
}
