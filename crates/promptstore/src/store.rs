//! The prompt/generation store.

use std::collections::HashMap;
use verifai_llm::{DataObject, Transcript, Verdict};

/// Identifier of a recorded conversation.
pub type ConversationId = u64;

/// Identifier of a recorded generation.
pub type GenerationId = u64;

/// What kind of task a conversation served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Tuple completion (paper Figure 1a).
    TupleCompletion,
    /// Textual claim generation / judgment (paper Figure 1b).
    ClaimJudgment,
    /// A verification prompt (the Verifier's own exchanges).
    Verification,
}

/// One recorded prompt/response exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct Conversation {
    /// Identifier.
    pub id: ConversationId,
    /// The exchange.
    pub transcript: Transcript,
    /// What the exchange was for.
    pub task: TaskKind,
    /// Monotonic sequence number (insertion order — the store's clock).
    pub seq: u64,
}

/// Verification outcome attached to a generation after VerifAI runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerificationSummary {
    /// Final trust-weighted decision.
    pub decision: Verdict,
    /// Decision confidence.
    pub confidence: f64,
    /// Number of evidence instances consulted.
    pub evidence_count: usize,
}

/// One generated data object with its lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRecord {
    /// Identifier.
    pub id: GenerationId,
    /// The conversation that produced it.
    pub conversation: ConversationId,
    /// The generated object's workload id.
    pub object_id: u64,
    /// Human-readable rendering of the object.
    pub rendered: String,
    /// Verification outcome, once attached.
    pub verification: Option<VerificationSummary>,
}

/// Aggregate statistics of the store — the management view the paper
/// motivates: how much generated data exists, and how much of it survived
/// verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Recorded conversations.
    pub conversations: usize,
    /// Recorded generations.
    pub generations: usize,
    /// Generations verified as correct.
    pub verified: usize,
    /// Generations refuted.
    pub refuted: usize,
    /// Generations with undecided verification.
    pub undecided: usize,
    /// Generations never verified.
    pub unverified: usize,
}

/// ModelDB-style store of prompts, generations, and verification lineage.
#[derive(Debug, Default)]
pub struct PromptStore {
    conversations: Vec<Conversation>,
    generations: Vec<GenerationRecord>,
    by_object: HashMap<u64, GenerationId>,
}

impl PromptStore {
    /// Empty store.
    pub fn new() -> PromptStore {
        PromptStore::default()
    }

    /// Record a conversation; returns its id.
    pub fn record_conversation(
        &mut self,
        transcript: Transcript,
        task: TaskKind,
    ) -> ConversationId {
        let id = self.conversations.len() as ConversationId;
        let seq = id;
        self.conversations.push(Conversation {
            id,
            transcript,
            task,
            seq,
        });
        id
    }

    /// Record a generated data object produced by `conversation`.
    pub fn record_generation(
        &mut self,
        conversation: ConversationId,
        object: &DataObject,
    ) -> GenerationId {
        let id = self.generations.len() as GenerationId;
        self.generations.push(GenerationRecord {
            id,
            conversation,
            object_id: object.id(),
            rendered: object.render(),
            verification: None,
        });
        self.by_object.insert(object.id(), id);
        id
    }

    /// Attach a verification outcome to the generation of `object_id`.
    /// Returns false when no such generation was recorded.
    pub fn attach_verification(&mut self, object_id: u64, summary: VerificationSummary) -> bool {
        match self.by_object.get(&object_id) {
            Some(&gen) => {
                self.generations[gen as usize].verification = Some(summary);
                true
            }
            None => false,
        }
    }

    /// Fetch a conversation.
    pub fn conversation(&self, id: ConversationId) -> Option<&Conversation> {
        self.conversations.get(id as usize)
    }

    /// Fetch a generation.
    pub fn generation(&self, id: GenerationId) -> Option<&GenerationRecord> {
        self.generations.get(id as usize)
    }

    /// The generation recorded for a workload object id.
    pub fn generation_of_object(&self, object_id: u64) -> Option<&GenerationRecord> {
        self.by_object
            .get(&object_id)
            .and_then(|&g| self.generation(g))
    }

    /// All conversations, in insertion order.
    pub fn conversations(&self) -> &[Conversation] {
        &self.conversations
    }

    /// All generations, in insertion order.
    pub fn generations(&self) -> &[GenerationRecord] {
        &self.generations
    }

    /// Generations whose verification refuted them — the "bad generated data"
    /// the paper's introduction warns about, now enumerable and auditable.
    pub fn refuted_generations(&self) -> impl Iterator<Item = &GenerationRecord> {
        self.generations
            .iter()
            .filter(|g| matches!(g.verification, Some(v) if v.decision == Verdict::Refuted))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            conversations: self.conversations.len(),
            generations: self.generations.len(),
            ..StoreStats::default()
        };
        for g in &self.generations {
            match g.verification {
                Some(v) => match v.decision {
                    Verdict::Verified => s.verified += 1,
                    Verdict::Refuted => s.refuted += 1,
                    Verdict::NotRelated | Verdict::Unknown => s.undecided += 1,
                },
                None => s.unverified += 1,
            }
        }
        s
    }

    /// Machine-readable export of the whole store.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "conversations": self.conversations.iter().map(|c| serde_json::json!({
                "id": c.id,
                "task": format!("{:?}", c.task),
                "messages": c.transcript.messages.iter().map(|m| serde_json::json!({
                    "role": format!("{:?}", m.role),
                    "content": m.content,
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
            "generations": self.generations.iter().map(|g| serde_json::json!({
                "id": g.id,
                "conversation": g.conversation,
                "object_id": g.object_id,
                "rendered": g.rendered,
                "verification": g.verification.map(|v| serde_json::json!({
                    "decision": v.decision.to_string(),
                    "confidence": v.confidence,
                    "evidence_count": v.evidence_count,
                })),
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifai_llm::TextClaim;

    fn transcript(prompt: &str) -> Transcript {
        let mut t = Transcript::default();
        t.user(prompt);
        t.assistant("response");
        t
    }

    fn object(id: u64) -> DataObject {
        DataObject::TextClaim(TextClaim {
            id,
            text: format!("claim number {id}"),
            expr: None,
            scope: None,
        })
    }

    #[test]
    fn record_and_link_lineage() {
        let mut store = PromptStore::new();
        let conv =
            store.record_conversation(transcript("complete this table"), TaskKind::TupleCompletion);
        let gen = store.record_generation(conv, &object(7));
        assert_eq!(store.generation(gen).unwrap().conversation, conv);
        assert_eq!(store.generation_of_object(7).unwrap().id, gen);

        assert!(store.attach_verification(
            7,
            VerificationSummary {
                decision: Verdict::Refuted,
                confidence: 0.9,
                evidence_count: 6
            }
        ));
        assert!(!store.attach_verification(
            99,
            VerificationSummary {
                decision: Verdict::Verified,
                confidence: 1.0,
                evidence_count: 1,
            }
        ));
        assert_eq!(store.refuted_generations().count(), 1);
    }

    #[test]
    fn stats_partition_generations() {
        let mut store = PromptStore::new();
        let conv = store.record_conversation(transcript("p"), TaskKind::ClaimJudgment);
        for (i, decision) in [
            Verdict::Verified,
            Verdict::Verified,
            Verdict::Refuted,
            Verdict::NotRelated,
        ]
        .into_iter()
        .enumerate()
        {
            store.record_generation(conv, &object(i as u64));
            store.attach_verification(
                i as u64,
                VerificationSummary {
                    decision,
                    confidence: 0.8,
                    evidence_count: 3,
                },
            );
        }
        store.record_generation(conv, &object(10)); // never verified
        let s = store.stats();
        assert_eq!(s.conversations, 1);
        assert_eq!(s.generations, 5);
        assert_eq!(s.verified, 2);
        assert_eq!(s.refuted, 1);
        assert_eq!(s.undecided, 1);
        assert_eq!(s.unverified, 1);
    }

    #[test]
    fn json_export_is_complete() {
        let mut store = PromptStore::new();
        let conv = store.record_conversation(transcript("the prompt"), TaskKind::Verification);
        store.record_generation(conv, &object(1));
        let v = store.to_json();
        assert_eq!(v["conversations"].as_array().unwrap().len(), 1);
        assert_eq!(v["generations"][0]["object_id"], 1);
        assert!(v["generations"][0]["verification"].is_null());
        assert_eq!(
            v["conversations"][0]["messages"][0]["content"],
            "the prompt"
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use verifai_llm::TextClaim;

    proptest! {
        /// Stats always partition the generations exactly.
        #[test]
        fn stats_partition_exactly(decisions in proptest::collection::vec(0u8..4, 0..40)) {
            let mut store = PromptStore::new();
            let conv = store.record_conversation(Transcript::default(), TaskKind::ClaimJudgment);
            for (i, &d) in decisions.iter().enumerate() {
                let object = DataObject::TextClaim(TextClaim {
                    id: i as u64,
                    text: format!("claim {i}"),
                    expr: None,
                    scope: None,
                });
                store.record_generation(conv, &object);
                let decision = match d {
                    0 => continue, // leave unverified
                    1 => Verdict::Verified,
                    2 => Verdict::Refuted,
                    _ => Verdict::NotRelated,
                };
                store.attach_verification(
                    i as u64,
                    VerificationSummary { decision, confidence: 0.5, evidence_count: 1 },
                );
            }
            let s = store.stats();
            prop_assert_eq!(
                s.verified + s.refuted + s.undecided + s.unverified,
                s.generations
            );
            prop_assert_eq!(s.generations, decisions.len());
            prop_assert_eq!(s.refuted, store.refuted_generations().count());
        }
    }
}
