//! Prompt search — the "better prompt engineering" half of the §5 direction:
//! find past conversations similar to a draft prompt so their phrasing (and
//! their outcomes) can be reused.

use crate::store::{ConversationId, PromptStore};
use verifai_text::sim::tf_cosine;
use verifai_text::Analyzer;

/// Rank stored conversations by TF-cosine similarity between `query` and the
/// conversation's user-side text; returns up to `k` (id, score) pairs, highest
/// first, ties broken by id. Conversations with zero similarity are dropped.
pub fn search_prompts(store: &PromptStore, query: &str, k: usize) -> Vec<(ConversationId, f64)> {
    let analyzer = Analyzer::standard();
    let q = analyzer.term_frequencies(query);
    if q.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(ConversationId, f64)> = store
        .conversations()
        .iter()
        .map(|c| {
            let user_text: String = c
                .transcript
                .messages
                .iter()
                .filter(|m| m.role == verifai_llm::Role::User)
                .map(|m| m.content.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            (c.id, tf_cosine(&q, &analyzer.term_frequencies(&user_text)))
        })
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TaskKind;
    use verifai_llm::Transcript;

    fn store_with(prompts: &[&str]) -> PromptStore {
        let mut store = PromptStore::new();
        for p in prompts {
            let mut t = Transcript::default();
            t.user(*p);
            t.assistant("ok");
            store.record_conversation(t, TaskKind::TupleCompletion);
        }
        store
    }

    #[test]
    fn finds_similar_prompts() {
        let store = store_with(&[
            "Please fill the missing values in the election table",
            "Validate the claim about championship points",
            "Summarize quarterly revenue figures",
        ]);
        let hits = search_prompts(&store, "fill missing election values", 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > 0.3);
    }

    #[test]
    fn irrelevant_prompts_are_dropped() {
        let store = store_with(&["alpha beta gamma", "delta epsilon"]);
        let hits = search_prompts(&store, "zeta eta theta", 5);
        assert!(hits.is_empty());
    }

    #[test]
    fn k_and_empty_query() {
        let store = store_with(&["one two", "one three", "one four"]);
        assert_eq!(search_prompts(&store, "one", 2).len(), 2);
        assert!(search_prompts(&store, "", 2).is_empty());
        assert!(search_prompts(&store, "one", 0).is_empty());
    }

    #[test]
    fn only_user_side_is_searched() {
        let mut store = PromptStore::new();
        let mut t = Transcript::default();
        t.user("unrelated words entirely");
        t.assistant("championship points table");
        store.record_conversation(t, TaskKind::Verification);
        // The assistant said "championship", but the user never did.
        assert!(search_prompts(&store, "championship points", 5).is_empty());
    }
}
