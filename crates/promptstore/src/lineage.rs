//! Lineage reports: the full story of one piece of generated data, from the
//! prompt that produced it to the verdict that judged it — the "data lineage
//! tracking" half of the §5 direction, and the human-audit complement to the
//! pipeline's provenance log (C4).

use crate::store::{GenerationId, PromptStore};
use verifai_llm::Role;

/// A rendered lineage trail for one generation.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageReport {
    /// The generation this report covers.
    pub generation: GenerationId,
    /// The rendered report text.
    pub text: String,
}

/// Build the lineage report for a generation, if it exists.
pub fn lineage(store: &PromptStore, generation: GenerationId) -> Option<LineageReport> {
    let gen = store.generation(generation)?;
    let conv = store.conversation(gen.conversation)?;
    let mut text = format!(
        "lineage of generation {} (object {}):\n",
        gen.id, gen.object_id
    );
    text.push_str(&format!(
        "  produced by conversation {} ({:?})\n",
        conv.id, conv.task
    ));
    for m in &conv.transcript.messages {
        let role = match m.role {
            Role::User => "prompt",
            Role::Assistant => "response",
        };
        // First line of each message keeps the report skimmable.
        let first_line = m.content.lines().next().unwrap_or_default();
        text.push_str(&format!("    {role}: {first_line}\n"));
    }
    text.push_str(&format!("  generated: {}\n", gen.rendered));
    match gen.verification {
        Some(v) => text.push_str(&format!(
            "  verification: {} (confidence {:.2}, {} evidence instances)\n",
            v.decision, v.confidence, v.evidence_count
        )),
        None => text.push_str("  verification: not yet verified\n"),
    }
    Some(LineageReport { generation, text })
}

impl PromptStore {
    /// Convenience: the lineage report for a generation.
    pub fn lineage(&self, generation: GenerationId) -> Option<LineageReport> {
        lineage(self, generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{TaskKind, VerificationSummary};
    use verifai_llm::{DataObject, TextClaim, Transcript, Verdict};

    #[test]
    fn report_traces_prompt_to_verdict() {
        let mut store = PromptStore::new();
        let mut t = Transcript::default();
        t.user("Question:\nelections table\nPlease fill the missing values");
        t.assistant("Here is the completed table:\n...");
        let conv = store.record_conversation(t, TaskKind::TupleCompletion);
        let object = DataObject::TextClaim(TextClaim {
            id: 3,
            text: "a generated claim".into(),
            expr: None,
            scope: None,
        });
        let gen = store.record_generation(conv, &object);
        store.attach_verification(
            3,
            VerificationSummary {
                decision: Verdict::Refuted,
                confidence: 0.88,
                evidence_count: 5,
            },
        );

        let report = store.lineage(gen).unwrap();
        assert!(report.text.contains("conversation 0 (TupleCompletion)"));
        assert!(report.text.contains("prompt: Question:"));
        assert!(report.text.contains("generated: claim: a generated claim"));
        assert!(report
            .text
            .contains("verification: Refuted (confidence 0.88, 5 evidence"));
    }

    #[test]
    fn unverified_generation_says_so() {
        let mut store = PromptStore::new();
        let conv = store.record_conversation(Transcript::default(), TaskKind::ClaimJudgment);
        let object = DataObject::TextClaim(TextClaim {
            id: 1,
            text: "x".into(),
            expr: None,
            scope: None,
        });
        let gen = store.record_generation(conv, &object);
        assert!(store
            .lineage(gen)
            .unwrap()
            .text
            .contains("not yet verified"));
        assert!(store.lineage(999).is_none());
    }
}
