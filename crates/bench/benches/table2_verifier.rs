//! Regenerates the paper's Table 2 — evaluation of the Verifier:
//!
//! |                         | ChatGPT | PASTA |
//! |-------------------------|---------|-------|
//! | (tuple, tuple+text)     | 0.88    | NA    |
//! | (text, relevant table)  | 0.75    | 0.89  |
//! | (text, retrieved table) | 0.91    | 0.72  |
//!
//! The key *shape* is the crossover: the local PASTA model beats the generic
//! LLM when the evidence table is known-relevant (in-distribution execution),
//! while the LLM wins on open-domain retrieved tables because it recognizes
//! unrelated evidence that PASTA was never trained to abstain on.
//!
//! ```text
//! cargo bench -p verifai-bench --bench table2_verifier
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;
use verifai::experiments::table2;
use verifai::report::render_table2;
use verifai_bench::{paper_context, write_artifact};
use verifai_lake::DataInstance;
use verifai_verify::{PastaVerifier, Verifier};

fn bench_table2(c: &mut Criterion) {
    let (mut ctx, scale) = paper_context();

    let result = table2(&mut ctx);
    eprintln!(
        "\n=== Table 2 (verifier accuracy), scale = {} ===",
        scale.label()
    );
    eprintln!("{}", render_table2(&result));
    eprintln!("paper: 0.88 | 0.75/0.89 | 0.91/0.72\n");
    assert!(
        result.claim_relevant_pasta.value() > result.claim_relevant_chatgpt.value(),
        "crossover violated on relevant tables"
    );
    assert!(
        result.claim_retrieved_chatgpt.value() > result.claim_retrieved_pasta.value(),
        "crossover violated on retrieved tables"
    );
    write_artifact(
        &format!("table2_{}", scale.label()),
        &json!({
            "scale": scale.label(),
            "tuple_mixed_chatgpt": result.tuple_mixed_chatgpt.value(),
            "claim_relevant_chatgpt": result.claim_relevant_chatgpt.value(),
            "claim_relevant_pasta": result.claim_relevant_pasta.value(),
            "claim_retrieved_chatgpt": result.claim_retrieved_chatgpt.value(),
            "claim_retrieved_pasta": result.claim_retrieved_pasta.value(),
            "paper": {
                "tuple_mixed_chatgpt": 0.88,
                "claim_relevant_chatgpt": 0.75,
                "claim_relevant_pasta": 0.89,
                "claim_retrieved_chatgpt": 0.91,
                "claim_retrieved_pasta": 0.72,
            },
        }),
    );

    // Per-pair verifier latency: the LLM verifier vs the local PASTA model on
    // the same (claim, relevant table) pair.
    let claim = ctx.claims[0].clone();
    let object = ctx.system.claim_object(&claim);
    let table = ctx
        .system
        .lake()
        .table(claim.table)
        .expect("source table")
        .clone();
    let evidence = DataInstance::Table(table);
    let pasta = PastaVerifier::with_defaults();

    let mut group = c.benchmark_group("table2_verifier");
    group.bench_function(format!("chatgpt_sim_per_pair/{}", scale.label()), |b| {
        b.iter(|| ctx.system.llm().verify(&object, &evidence))
    });
    group.bench_function(format!("pasta_per_pair/{}", scale.label()), |b| {
        b.iter(|| pasta.verify(&object, &evidence))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
