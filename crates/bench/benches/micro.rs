//! Component microbenchmarks: the per-call cost of every pipeline stage in
//! isolation — analyzer, embedders, BM25 search, HNSW search, the three
//! rerankers, claim parsing/execution, and the verifiers.
//!
//! ```text
//! cargo bench -p verifai-bench --bench micro
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use verifai_claims::{execute, parse_claim};
use verifai_embed::{TextEmbedder, TokenEmbedder, TupleEmbedder};
use verifai_index::{FlatIndex, HnswIndex, InvertedIndex, VectorIndex};
use verifai_lake::{DataInstance, InstanceId};
use verifai_llm::{DataObject, SimLlm, SimLlmConfig, TextClaim};
use verifai_rerank::colbert::ColbertReranker;
use verifai_rerank::table::TableReranker;
use verifai_rerank::tuple::TupleReranker;
use verifai_rerank::Reranker;
use verifai_text::Analyzer;
use verifai_verify::{PastaVerifier, Verifier};

fn bench_text_layer(c: &mut Criterion) {
    let analyzer = Analyzer::standard();
    let sentence = "The 1959 NCAA Track and Field Championships were held in June at Berkeley \
                    with several meet records set during the three day competition";
    let mut group = c.benchmark_group("text");
    group.bench_function("analyze_sentence", |b| {
        b.iter(|| analyzer.analyze(black_box(sentence)))
    });
    group.bench_function("levenshtein_16", |b| {
        b.iter(|| {
            verifai_text::sim::levenshtein(
                black_box("track and field"),
                black_box("track und feild"),
            )
        })
    });
    group.bench_function("jaro_winkler_16", |b| {
        b.iter(|| {
            verifai_text::sim::jaro_winkler(black_box("championships"), black_box("championship"))
        })
    });
    group.finish();
}

fn bench_embeddings(c: &mut Criterion) {
    let text = TextEmbedder::with_seed(1);
    let token = TokenEmbedder::new(64, 1);
    let sentence = "the incumbent of New York 3 is James Pike of the Democratic party";
    let mut group = c.benchmark_group("embed");
    group.bench_function("text_embed_sentence", |b| {
        b.iter(|| text.embed(black_box(sentence)))
    });
    group.bench_function("token_embed_sentence", |b| {
        b.iter(|| token.embed_text(black_box(sentence)))
    });
    group.finish();
    let _ = TupleEmbedder::new(256, 1); // constructed for parity; tuple path timed via reranker
}

fn bench_indexes(c: &mut Criterion) {
    // 10k synthetic documents.
    let embedder = TextEmbedder::with_seed(2);
    let mut inverted = InvertedIndex::default();
    let mut flat = FlatIndex::new();
    let mut hnsw = HnswIndex::with_defaults();
    for i in 0..10_000u64 {
        let doc = format!(
            "entity {} in category {} with attribute values {} and {} across region {}",
            i,
            i % 97,
            i % 13,
            i % 29,
            i % 7
        );
        inverted.add(InstanceId::Text(i), &doc);
        let v = embedder.embed(&doc);
        flat.add(InstanceId::Text(i), v.clone());
        hnsw.add(InstanceId::Text(i), v);
    }
    let query = "entity category attribute region 42";
    let qv = embedder.embed(query);
    let mut group = c.benchmark_group("index_10k");
    group.bench_function("bm25_top10", |b| {
        b.iter(|| inverted.search(black_box(query), 10))
    });
    group.bench_function("flat_top10", |b| b.iter(|| flat.search(black_box(&qv), 10)));
    group.bench_function("hnsw_top10", |b| b.iter(|| hnsw.search(black_box(&qv), 10)));
    group.finish();

    // Construction cost: every insert runs greedy descent + ef_construction
    // beam searches over the fused dot kernel.
    let entries: Vec<(InstanceId, verifai_embed::Vector)> = (0..500u64)
        .map(|i| {
            let doc = format!("entity {} in category {} with value {}", i, i % 23, i % 11);
            (InstanceId::Text(i), embedder.embed(&doc))
        })
        .collect();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("hnsw_build_500", |b| {
        b.iter(|| {
            let mut h = HnswIndex::with_defaults();
            for (id, v) in &entries {
                h.add(*id, v.clone());
            }
            black_box(h.len())
        })
    });
    group.finish();
}

fn sample_pair() -> (DataObject, DataInstance, DataInstance, DataInstance) {
    use verifai_lake::{Column, DataType, Schema, Table, TextDocument, Value};
    let claim = DataObject::TextClaim(TextClaim {
        id: 1,
        text: "in the 1959 NCAA Track and Field Championships, the number of rows where points \
               is 1 is 2"
            .into(),
        expr: None,
        scope: None,
    });
    let mut table = Table::new(
        1,
        "1959 NCAA Track and Field Championships",
        Schema::new(vec![
            Column::key("team", DataType::Text),
            Column::new("points", DataType::Int),
        ]),
        0,
    );
    for (t, p) in [("Kansas", 42), ("Brown", 1), ("Yale", 1), ("Oregon", 28)] {
        table.push_row(vec![Value::text(t), Value::Int(p)]).unwrap();
    }
    let tuple = table.tuple_at(1, 7).unwrap();
    let doc = TextDocument::new(
        3,
        "Brown",
        "Brown is a collegiate athletic program. The points of Brown is 1. The championships \
         were held over three days in June.",
        0,
    );
    (
        claim,
        DataInstance::Table(table),
        DataInstance::Tuple(tuple),
        DataInstance::Text(doc),
    )
}

fn bench_rerankers(c: &mut Criterion) {
    let (claim, table, tuple, text) = sample_pair();
    let colbert = ColbertReranker::with_defaults();
    let table_rr = TableReranker::with_defaults();
    let tuple_rr = TupleReranker::with_defaults();
    let mut group = c.benchmark_group("rerank_per_pair");
    group.bench_function("colbert_text", |b| b.iter(|| colbert.score(&claim, &text)));
    group.bench_function("opentfv_table", |b| {
        b.iter(|| table_rr.score(&claim, &table))
    });
    group.bench_function("retclean_tuple", |b| {
        b.iter(|| tuple_rr.score(&claim, &tuple))
    });
    // The late-interaction kernel alone, on pre-embedded token sets: a pure
    // measure of the fused dot_unit inner loop.
    let enc = TokenEmbedder::new(64, 0xc01b);
    let q_toks = enc.embed_text("the incumbent of New York 3 is James Pike");
    let d_toks = enc.embed_text(
        "James Pike was elected in the New York 3 district as the incumbent \
         candidate representing the party in the house election of that year",
    );
    group.bench_function("maxsim_pre_embedded", |b| {
        b.iter(|| ColbertReranker::maxsim(black_box(&q_toks), black_box(&d_toks)))
    });
    group.finish();
}

fn bench_claims_and_verifiers(c: &mut Criterion) {
    let (claim_obj, table, _, _) = sample_pair();
    let DataObject::TextClaim(claim) = &claim_obj else {
        unreachable!()
    };
    let DataInstance::Table(tbl) = &table else {
        unreachable!()
    };
    let expr = parse_claim(&claim.text).expect("canonical claim parses");
    let pasta = PastaVerifier::with_defaults();
    let llm = SimLlm::new(SimLlmConfig::default(), verifai_llm::WorldModel::new());
    let mut group = c.benchmark_group("claims");
    group.bench_function("parse_claim", |b| {
        b.iter(|| parse_claim(black_box(&claim.text)))
    });
    group.bench_function("execute_count", |b| {
        b.iter(|| execute(black_box(&expr), black_box(tbl)))
    });
    group.bench_function("pasta_verify", |b| {
        b.iter(|| pasta.verify(&claim_obj, &table))
    });
    group.bench_function("llm_verify", |b| b.iter(|| llm.verify(&claim_obj, &table)));
    group.finish();
}

criterion_group!(
    benches,
    bench_text_layer,
    bench_embeddings,
    bench_indexes,
    bench_rerankers,
    bench_claims_and_verifiers
);
criterion_main!(benches);
