//! Scaling behaviour of the substrates: lake generation, index construction,
//! and per-query retrieval latency as the corpus grows toward the paper's
//! 19.5k-table / 270k-tuple / 13.8k-document scale (challenge C1: "indexing
//! multi-modal data lakes at scale").
//!
//! ```text
//! cargo bench -p verifai-bench --bench scaling
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use verifai::{VerifAi, VerifAiConfig};
use verifai_datagen::{build, LakeSpec};
use verifai_lake::InstanceKind;

/// Lake specs of increasing size (fractions of the small preset).
fn ladder() -> Vec<(&'static str, LakeSpec)> {
    let mut quarter = LakeSpec::small(42);
    quarter.film_tables /= 4;
    quarter.player_tables /= 4;
    quarter.city_tables /= 4;
    quarter.election_states /= 2;
    quarter.championship_series /= 2;
    let mut half = LakeSpec::small(42);
    half.film_tables /= 2;
    half.player_tables /= 2;
    half.city_tables /= 2;
    vec![
        ("tiny", LakeSpec::tiny(42)),
        ("quarter", quarter),
        ("half", half),
        ("small", LakeSpec::small(42)),
    ]
}

fn bench_scaling(c: &mut Criterion) {
    // Lake generation throughput.
    let mut group = c.benchmark_group("lake_generation");
    group.sample_size(10);
    for (label, spec) in ladder() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| build(spec))
        });
    }
    group.finish();

    // Index construction (content only vs content+semantic).
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for (label, spec) in ladder().into_iter().take(3) {
        group.bench_with_input(BenchmarkId::new("content_only", label), &spec, |b, spec| {
            b.iter_with_setup(
                || build(spec),
                |lake| VerifAi::build(lake, VerifAiConfig::paper_setting()),
            )
        });
        group.bench_with_input(
            BenchmarkId::new("with_semantic", label),
            &spec,
            |b, spec| {
                b.iter_with_setup(
                    || build(spec),
                    |lake| VerifAi::build(lake, VerifAiConfig::default()),
                )
            },
        );
    }
    group.finish();

    // Batch verification: sequential vs multi-threaded workers.
    {
        let generated = build(&LakeSpec::tiny(42));
        let tasks = verifai_datagen::completion_workload(&generated, 24, 7);
        let system = VerifAi::build(generated, VerifAiConfig::default());
        let objects: Vec<verifai::DataObject> = tasks.iter().map(|t| system.impute(t)).collect();
        let mut group = c.benchmark_group("verify_batch_24_objects");
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| b.iter(|| system.verify_batch(&objects, threads)),
            );
        }
        group.finish();
    }

    // Query latency on the largest prebuilt system.
    let system = VerifAi::build(build(&LakeSpec::small(42)), VerifAiConfig::default());
    let stats = system.lake().stats();
    eprintln!("query-latency corpus: {stats}");
    let mut group = c.benchmark_group("query_latency_small");
    for (name, kind, k) in [
        ("tuple_top3", InstanceKind::Tuple, 3usize),
        ("table_top5", InstanceKind::Table, 5),
        ("text_top3", InstanceKind::Text, 3),
        ("tuple_top50_coarse", InstanceKind::Tuple, 50),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| system.retrieve("incumbent district New York elections 1956", kind, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
