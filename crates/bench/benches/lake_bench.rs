//! Live-lake benchmarks: streaming ingest throughput, delete + compaction
//! cost, and cold (v2 eager-decode) vs warm (v3 zero-copy) snapshot load.
//!
//! ```text
//! VERIFAI_BENCH_SCALE=tiny cargo bench -p verifai-bench --bench lake_bench
//! ```
//!
//! Writes `BENCH_lake.json` to the repository root (see
//! `scripts/bench_smoke.sh`). The snapshot comparison is the acceptance
//! number for the v3 format: the same flat index is serialized as v2
//! (eagerly decoded vector payloads) and v3 (`bytes`-backed zero-copy
//! slabs), saved with `save_atomic`, and timed through a full
//! read-from-disk + decode cycle.

use std::time::Instant;

use verifai::{LakeMutation, SemanticBackend, VerifAi, VerifAiConfig};
use verifai_bench::BenchScale;
use verifai_datagen::build;
use verifai_embed::TextEmbedder;
use verifai_index::{save_atomic, FlatIndex, VectorIndex};
use verifai_lake::TextDocument;

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

fn main() {
    let scale = BenchScale::from_env();
    let (ingest_docs, n_vectors) = match scale {
        BenchScale::Tiny => (300usize, 2_000usize),
        BenchScale::Small => (2_000, 20_000),
        BenchScale::Paper => (10_000, 100_000),
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Streaming ingest: docs/s through the live mutation path ---------
    let config = VerifAiConfig {
        semantic_backend: SemanticBackend::Flat,
        ..VerifAiConfig::default()
    };
    let mut sys = VerifAi::build(build(&scale.spec(42)), config);
    let base: u64 = 50_000; // clear of every generated doc id
    let start = Instant::now();
    for i in 0..ingest_docs as u64 {
        sys.apply(LakeMutation::AddDoc(TextDocument::new(
            base + i,
            format!("Streamed bulletin {i}"),
            format!(
                "Streamed bulletin {i}: the district incumbent filed report {} with the commission on day {}.",
                i % 97,
                i % 31
            ),
            0,
        )))
        .expect("live ingest");
    }
    let ingest_ns = start.elapsed().as_nanos() as u64;
    let ingest_docs_per_s = ingest_docs as f64 / (ingest_ns as f64 / 1e9);
    eprintln!(
        "live_ingest: {ingest_docs} docs in {:.1} ms ({ingest_docs_per_s:.0} docs/s)",
        ingest_ns as f64 / 1e6
    );

    // --- Delete + compaction cost ----------------------------------------
    let start = Instant::now();
    for i in 0..ingest_docs as u64 {
        sys.apply(LakeMutation::RemoveDoc(base + i))
            .expect("live delete");
    }
    let delete_ns = start.elapsed().as_nanos() as u64;
    let tombstones_before = sys.live_stats();
    let start = Instant::now();
    sys.compact_live(host_cores);
    let compact_ns = start.elapsed().as_nanos() as u64;
    let after = sys.live_stats();
    eprintln!(
        "delete+compact: {ingest_docs} deletes in {:.1} ms, compaction {:.1} ms \
         (content tombstones {} -> {}, semantic {} -> {})",
        delete_ns as f64 / 1e6,
        compact_ns as f64 / 1e6,
        tombstones_before.content_tombstones,
        after.content_tombstones,
        tombstones_before.semantic_tombstones,
        after.semantic_tombstones,
    );

    // --- Cold (v2 eager) vs warm (v3 zero-copy) snapshot load ------------
    let embedder = TextEmbedder::with_seed(7);
    let mut flat = FlatIndex::new();
    for i in 0..n_vectors {
        flat.add(
            verifai_lake::InstanceId::Text(i as u64),
            embedder.embed(&format!(
                "entity {} topic {} attribute {}",
                i,
                i % 31,
                i % 7
            )),
        );
    }
    let dir = std::env::temp_dir();
    let v2_path = dir.join("verifai_lake_bench_v2.snap");
    let v3_path = dir.join("verifai_lake_bench_v3.snap");
    save_atomic(&v2_path, &flat.to_bytes_v2()).expect("write v2 snapshot");
    save_atomic(&v3_path, &flat.to_bytes()).expect("write v3 snapshot");
    let cold_ns = best_ns(5, || {
        let bytes = std::fs::read(&v2_path).expect("read v2");
        let idx = FlatIndex::from_bytes(bytes.into()).expect("decode v2");
        std::hint::black_box(VectorIndex::len(&idx));
    });
    let warm_ns = best_ns(5, || {
        let bytes = std::fs::read(&v3_path).expect("read v3");
        let idx = FlatIndex::from_bytes(bytes.into()).expect("decode v3");
        std::hint::black_box(VectorIndex::len(&idx));
    });
    let _ = std::fs::remove_file(&v2_path);
    let _ = std::fs::remove_file(&v3_path);
    let load_speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    eprintln!(
        "snapshot_load ({n_vectors} vectors): v2 eager {:.2} ms, v3 zero-copy {:.2} ms ({load_speedup:.2}x)",
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6
    );

    // --- Artifact ---------------------------------------------------------
    let artifact = serde_json::json!({
        "scale": scale.label(),
        "host_cores": host_cores,
        "live_ingest": {
            "docs": ingest_docs,
            "wall_ms": ingest_ns as f64 / 1e6,
            "docs_per_s": ingest_docs_per_s,
        },
        "delete_and_compaction": {
            "deletes": ingest_docs,
            "delete_ms": delete_ns as f64 / 1e6,
            "compaction_ms": compact_ns as f64 / 1e6,
            "content_tombstones_before": tombstones_before.content_tombstones,
            "content_tombstones_after": after.content_tombstones,
            "compactions": after.content_compactions + after.semantic_compactions,
        },
        "snapshot_load": {
            "vectors": n_vectors,
            "v2_eager_ms": cold_ns as f64 / 1e6,
            "v3_zero_copy_ms": warm_ns as f64 / 1e6,
            "speedup": load_speedup,
        },
    });
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_lake.json");
    let rendered = serde_json::to_string_pretty(&artifact).unwrap_or_default();
    match std::fs::write(&path, format!("{rendered}\n")) {
        Ok(()) => eprintln!("artifact written: {}", path.display()),
        Err(e) => eprintln!("artifact write failed at {}: {e}", path.display()),
    }
}
