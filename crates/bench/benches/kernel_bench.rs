//! Similarity-kernel and index-build benchmarks backing the perf claims in
//! DESIGN.md §10: flat-scan throughput (scalar cosine vs fused unit dot),
//! HNSW construction cost, ColBERT MaxSim cost, and the parallel vs
//! sequential lake index build.
//!
//! ```text
//! cargo bench -p verifai-bench --bench kernel_bench
//! ```
//!
//! Besides the usual stderr report, this bench writes `BENCH_kernels.json`
//! to the repository root (see `scripts/bench_smoke.sh`), recording
//! `host_cores` alongside the numbers — the parallel-build speedup is only
//! meaningful on a multi-core host.

use std::time::Instant;

use verifai::{VerifAi, VerifAiConfig};
use verifai_bench::BenchScale;
use verifai_datagen::build;
use verifai_embed::kernel::{dot_scalar, dot_unit};
use verifai_embed::{quant, TextEmbedder, TokenEmbedder, Vector};
use verifai_index::{FlatIndex, HnswConfig, HnswIndex, SearchHit, VectorIndex};
use verifai_lake::InstanceId;
use verifai_rerank::colbert::ColbertReranker;

/// Pre-invariant flat-scan scoring: cosine with both norms re-derived by a
/// strict scalar dot — three naive passes per candidate, exactly what the
/// index paid before the unit-norm invariant and the chunked kernel.
fn cosine_scalar(a: &[f32], b: &[f32]) -> f32 {
    let na = dot_scalar(a, a).sqrt();
    let nb = dot_scalar(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot_scalar(a, b) / (na * nb)
    }
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// Fraction of `want`'s ids that `got` recovered (recall@|want|).
fn recall(got: &[SearchHit], want: &[SearchHit]) -> f64 {
    if want.is_empty() {
        return 1.0;
    }
    let found = want
        .iter()
        .filter(|w| got.iter().any(|g| g.id == w.id))
        .count();
    found as f64 / want.len() as f64
}

fn main() {
    let scale = BenchScale::from_env();
    let (n_vectors, hnsw_n, maxsim_pairs) = match scale {
        BenchScale::Tiny => (2_000usize, 400usize, 200usize),
        BenchScale::Small => (20_000, 2_000, 1_000),
        BenchScale::Paper => (100_000, 10_000, 5_000),
    };
    let dim = 128usize;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Flat scan: scalar-cosine baseline vs fused unit dot -------------
    let embedder = TextEmbedder::with_seed(7);
    let corpus: Vec<Vector> = (0..n_vectors)
        .map(|i| {
            embedder.embed(&format!(
                "entity {} topic {} attribute {}",
                i,
                i % 31,
                i % 7
            ))
        })
        .collect();
    let query = embedder.embed("entity topic attribute 42");
    let scalar_ns = best_ns(5, || {
        let mut acc = 0.0f32;
        for v in &corpus {
            acc += cosine_scalar(v.as_slice(), query.as_slice());
        }
        std::hint::black_box(acc);
    });
    let kernel_ns = best_ns(5, || {
        let mut acc = 0.0f32;
        for v in &corpus {
            acc += dot_unit(v.as_slice(), query.as_slice());
        }
        std::hint::black_box(acc);
    });
    let scalar_per_vec = scalar_ns as f64 / n_vectors as f64;
    let kernel_per_vec = kernel_ns as f64 / n_vectors as f64;
    let flat_speedup = scalar_per_vec / kernel_per_vec.max(1e-9);
    eprintln!(
        "flat_scan ({n_vectors} x {dim}): scalar {scalar_per_vec:.1} ns/vec, \
         kernel {kernel_per_vec:.1} ns/vec, speedup {flat_speedup:.2}x"
    );

    // A top-10 scan through the real FlatIndex, for the stderr record.
    let mut flat = FlatIndex::new();
    for (i, v) in corpus.iter().take(n_vectors).enumerate() {
        flat.add(InstanceId::Text(i as u64), v.clone());
    }
    let flat_search_ns = best_ns(5, || {
        std::hint::black_box(flat.search(&query, 10));
    });
    eprintln!(
        "flat_index top-10 over {n_vectors}: {:.3} ms",
        flat_search_ns as f64 / 1e6
    );

    // --- Int8 quantized scan: f32 kernel vs i8 kernel --------------------
    // Same corpus, codes encoded once (as the index sidecar keeps them);
    // the quantized sweep reads a quarter of the bytes per vector.
    let encoded: Vec<(Vec<i8>, f32)> = corpus
        .iter()
        .map(|v| quant::quantize(v.as_slice()))
        .collect();
    let (qcodes, qscale) = quant::quantize(query.as_slice());
    let quant_ns = best_ns(5, || {
        let mut acc = 0.0f32;
        for (codes, scale) in &encoded {
            acc += quant::dot_i8(codes, &qcodes) as f32 * (scale * qscale);
        }
        std::hint::black_box(acc);
    });
    let quant_per_vec = quant_ns as f64 / n_vectors as f64;
    let quant_speedup = kernel_per_vec / quant_per_vec.max(1e-9);
    eprintln!(
        "quantized_scan ({n_vectors} x {dim}): f32 kernel {kernel_per_vec:.1} ns/vec, \
         int8 kernel {quant_per_vec:.1} ns/vec, speedup {quant_speedup:.2}x"
    );

    // End-to-end: exact FlatIndex::search vs the quantized two-phase scan.
    let mut flat_quant = FlatIndex::new_quantized(4);
    for (i, v) in corpus.iter().enumerate() {
        flat_quant.add(InstanceId::Text(i as u64), v.clone());
    }
    let quant_search_ns = best_ns(5, || {
        std::hint::black_box(flat_quant.search(&query, 10));
    });
    eprintln!(
        "flat_index quantized top-10 over {n_vectors}: {:.3} ms (exact {:.3} ms)",
        quant_search_ns as f64 / 1e6,
        flat_search_ns as f64 / 1e6,
    );

    // --- Multi-query blocked scan vs B independent scans -----------------
    let batch_queries: Vec<Vector> = (0..8)
        .map(|i| embedder.embed(&format!("entity topic attribute probe {i}")))
        .collect();
    let independent_ns = best_ns(5, || {
        for q in &batch_queries {
            std::hint::black_box(flat.search(q, 10));
        }
    });
    let batched_ns = best_ns(5, || {
        std::hint::black_box(flat.search_batch(&batch_queries, 10));
    });
    let batch_speedup = independent_ns as f64 / batched_ns.max(1) as f64;
    eprintln!(
        "batched_scan (B={} over {n_vectors}): independent {:.3} ms, blocked {:.3} ms, \
         speedup {batch_speedup:.2}x",
        batch_queries.len(),
        independent_ns as f64 / 1e6,
        batched_ns as f64 / 1e6,
    );

    // --- Recall/latency frontier -----------------------------------------
    // Exact flat top-10 is ground truth; the quantized scan sweeps its
    // rescore over-fetch and HNSW sweeps its candidate-list width.
    let frontier_queries: Vec<Vector> = (0..16)
        .map(|i| embedder.embed(&format!("frontier probe {} topic {}", i, i % 5)))
        .collect();
    let truth: Vec<Vec<SearchHit>> = frontier_queries
        .iter()
        .map(|q| flat.search(q, 10))
        .collect();
    let mut quant_frontier = Vec::new();
    for rescore_factor in [1usize, 2, 4, 8] {
        flat_quant.set_quantized(true, rescore_factor);
        let ns = best_ns(3, || {
            for q in &frontier_queries {
                std::hint::black_box(flat_quant.search(q, 10));
            }
        });
        let mean_recall = frontier_queries
            .iter()
            .zip(&truth)
            .map(|(q, want)| recall(&flat_quant.search(q, 10), want))
            .sum::<f64>()
            / frontier_queries.len() as f64;
        let per_query_us = ns as f64 / frontier_queries.len() as f64 / 1e3;
        eprintln!(
            "frontier quantized rescore_factor={rescore_factor}: \
             recall@10 {mean_recall:.3}, {per_query_us:.1} us/query"
        );
        quant_frontier.push(serde_json::json!({
            "rescore_factor": rescore_factor,
            "recall_at_10": mean_recall,
            "us_per_query": per_query_us,
        }));
    }
    let mut hnsw_probe = HnswIndex::new(HnswConfig::default());
    for (i, v) in corpus.iter().take(hnsw_n).enumerate() {
        hnsw_probe.add(InstanceId::Text(i as u64), v.clone());
    }
    let hnsw_truth: Vec<Vec<SearchHit>> = {
        let mut exact = FlatIndex::new();
        for (i, v) in corpus.iter().take(hnsw_n).enumerate() {
            exact.add(InstanceId::Text(i as u64), v.clone());
        }
        frontier_queries
            .iter()
            .map(|q| exact.search(q, 10))
            .collect()
    };
    let mut hnsw_frontier = Vec::new();
    for ef_search in [16usize, 32, 64, 128] {
        hnsw_probe.set_ef_search(ef_search);
        let ns = best_ns(3, || {
            for q in &frontier_queries {
                std::hint::black_box(hnsw_probe.search(q, 10));
            }
        });
        let mean_recall = frontier_queries
            .iter()
            .zip(&hnsw_truth)
            .map(|(q, want)| recall(&hnsw_probe.search(q, 10), want))
            .sum::<f64>()
            / frontier_queries.len() as f64;
        let per_query_us = ns as f64 / frontier_queries.len() as f64 / 1e3;
        eprintln!(
            "frontier hnsw ef_search={ef_search}: \
             recall@10 {mean_recall:.3}, {per_query_us:.1} us/query"
        );
        hnsw_frontier.push(serde_json::json!({
            "ef_search": ef_search,
            "recall_at_10": mean_recall,
            "us_per_query": per_query_us,
        }));
    }

    // --- HNSW build ------------------------------------------------------
    let hnsw_entries: Vec<(InstanceId, Vector)> = corpus
        .iter()
        .take(hnsw_n)
        .enumerate()
        .map(|(i, v)| (InstanceId::Text(i as u64), v.clone()))
        .collect();
    let hnsw_build_ns = best_ns(3, || {
        let mut h = HnswIndex::with_defaults();
        for (id, v) in &hnsw_entries {
            h.add(*id, v.clone());
        }
        std::hint::black_box(h.len());
    });
    let hnsw_per_insert = hnsw_build_ns as f64 / hnsw_n as f64;
    eprintln!("hnsw_build ({hnsw_n} inserts): {hnsw_per_insert:.0} ns/insert");

    // --- ColBERT MaxSim --------------------------------------------------
    let token = TokenEmbedder::new(64, 0xc01b);
    let q_toks = token.embed_text("the incumbent of New York 3 is James Pike of the party");
    let d_toks = token.embed_text(
        "James Pike was elected in the New York 3 district as the incumbent candidate \
         representing the party in the house election of that year with a narrow margin \
         over the challenger after three recounts of the district vote",
    );
    let maxsim_ns = best_ns(5, || {
        let mut acc = 0.0f64;
        for _ in 0..maxsim_pairs {
            acc += ColbertReranker::maxsim(&q_toks, &d_toks);
        }
        std::hint::black_box(acc);
    });
    let maxsim_per_pair = maxsim_ns as f64 / maxsim_pairs as f64;
    eprintln!(
        "maxsim ({} x {} tokens): {maxsim_per_pair:.0} ns/pair",
        q_toks.len(),
        d_toks.len()
    );

    // --- Lake index build: sequential vs parallel ------------------------
    let spec = scale.spec(42);
    let sequential = VerifAi::build(
        build(&spec),
        VerifAiConfig {
            build_threads: 1,
            ..VerifAiConfig::default()
        },
    );
    let parallel = VerifAi::build(
        build(&spec),
        VerifAiConfig {
            build_threads: 0, // one worker per core
            ..VerifAiConfig::default()
        },
    );
    let seq_stats = sequential.build_stats();
    let par_stats = parallel.build_stats();
    let build_speedup = seq_stats.index_ns as f64 / par_stats.index_ns.max(1) as f64;
    eprintln!(
        "lake_index_build: sequential {:.1} ms, parallel {:.1} ms ({} threads, {} embedded), \
         speedup {build_speedup:.2}x on {host_cores} core(s)",
        seq_stats.index_ns as f64 / 1e6,
        par_stats.index_ns as f64 / 1e6,
        par_stats.threads,
        par_stats.embedded,
    );

    // --- Artifact --------------------------------------------------------
    let artifact = serde_json::json!({
        "scale": scale.label(),
        "host_cores": host_cores,
        "flat_scan": {
            "vectors": n_vectors,
            "dim": dim,
            "scalar_ns_per_vector": scalar_per_vec,
            "kernel_ns_per_vector": kernel_per_vec,
            "speedup": flat_speedup,
        },
        "quantized_scan": {
            "vectors": n_vectors,
            "dim": dim,
            "f32_ns_per_vector": kernel_per_vec,
            "int8_ns_per_vector": quant_per_vec,
            "speedup": quant_speedup,
            "exact_search_ms": flat_search_ns as f64 / 1e6,
            "quantized_search_ms": quant_search_ns as f64 / 1e6,
        },
        "batched_scan": {
            "batch": batch_queries.len(),
            "vectors": n_vectors,
            "independent_ms": independent_ns as f64 / 1e6,
            "blocked_ms": batched_ns as f64 / 1e6,
            "speedup": batch_speedup,
        },
        "frontier": {
            "queries": frontier_queries.len(),
            "quantized": quant_frontier,
            "hnsw": hnsw_frontier,
        },
        "hnsw_build": {
            "inserts": hnsw_n,
            "ns_per_insert": hnsw_per_insert,
        },
        "maxsim": {
            "query_tokens": q_toks.len(),
            "doc_tokens": d_toks.len(),
            "ns_per_pair": maxsim_per_pair,
        },
        "lake_index_build": {
            "sequential_ms": seq_stats.index_ns as f64 / 1e6,
            "parallel_ms": par_stats.index_ns as f64 / 1e6,
            "threads": par_stats.threads,
            "embedded_entries": par_stats.embedded,
            "speedup": build_speedup,
        },
    });
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_kernels.json");
    let rendered = serde_json::to_string_pretty(&artifact).unwrap_or_default();
    match std::fs::write(&path, format!("{rendered}\n")) {
        Ok(()) => eprintln!("artifact written: {}", path.display()),
        Err(e) => eprintln!("artifact write failed at {}: {e}", path.display()),
    }
}
