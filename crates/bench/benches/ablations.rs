//! Ablation benches for the design choices the paper motivates but does not
//! evaluate:
//!
//! * **k-sweep** — §4 anticipates that the weak (tuple → text) recall "will
//!   improve when we expand the number of retrieved files"; we sweep k.
//! * **index ablation** — §3.1 argues for combining content- and
//!   semantic-based indexes ("combining these two approaches can enhance
//!   recall"); we measure each alone and fused.
//! * **reranker ablation** — §3.2's premise is that task-specific reranking
//!   lets the verifier look at only k′ ≈ 5 instances; we compare final-k
//!   relevance with and without it.
//! * **trust ablation** — §3.3/C3: trust-weighted decisions vs plain majority
//!   on a lake containing corrupted generative-model documents.
//! * **KG ablation** — §5: decision coverage/accuracy with and without the
//!   knowledge-graph evidence modality in the plan.
//!
//! ```text
//! cargo bench -p verifai-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;
use verifai::experiments::ExperimentContext;
use verifai::metrics::recall_at_k;
use verifai::{VerifAi, VerifAiConfig};
use verifai_bench::{write_artifact, BenchScale};
use verifai_lake::{InstanceId, InstanceKind};

/// Mean (tuple → text) and (claim → table) recall@k over the workloads.
fn recalls_at(ctx: &mut ExperimentContext, k_text: usize, k_table: usize) -> (f64, f64) {
    let mut text_recall = 0.0;
    let tasks = ctx.tasks.clone();
    for task in &tasks {
        let object = ctx.system.impute(task);
        let query = VerifAi::query_of(&object);
        let ids: Vec<InstanceId> = ctx
            .system
            .retrieve(&query, InstanceKind::Text, k_text)
            .into_iter()
            .map(|h| h.id)
            .collect();
        let relevant: Vec<InstanceId> = task
            .relevant_docs
            .iter()
            .map(|&d| InstanceId::Text(d))
            .collect();
        text_recall += recall_at_k(&ids, &relevant, k_text);
    }
    let mut table_recall = 0.0;
    for claim in &ctx.claims {
        let ids: Vec<InstanceId> = ctx
            .system
            .retrieve(&claim.text, InstanceKind::Table, k_table)
            .into_iter()
            .map(|h| h.id)
            .collect();
        table_recall += recall_at_k(&ids, &[InstanceId::Table(claim.table)], k_table);
    }
    (
        text_recall / tasks.len().max(1) as f64,
        table_recall / ctx.claims.len().max(1) as f64,
    )
}

fn ablation_k_sweep(scale: BenchScale) -> serde_json::Value {
    let (tasks, claims) = scale.workload();
    let mut ctx = ExperimentContext::new(
        &scale.spec(42),
        tasks,
        claims,
        VerifAiConfig::paper_setting(),
    );
    let mut rows = Vec::new();
    eprintln!("--- k-sweep (content index only) ---");
    eprintln!("{:>4} {:>14} {:>15}", "k", "tuple->text", "claim->table");
    for k in [1usize, 3, 5, 10, 20] {
        let (text, table) = recalls_at(&mut ctx, k, k);
        eprintln!("{k:>4} {text:>14.2} {table:>15.2}");
        rows.push(json!({ "k": k, "tuple_text_recall": text, "claim_table_recall": table }));
    }
    json!(rows)
}

fn ablation_index_types(scale: BenchScale) -> serde_json::Value {
    let (tasks, claims) = scale.workload();
    let configs = [
        (
            "content-only",
            VerifAiConfig {
                use_semantic_index: false,
                use_reranker: false,
                ..VerifAiConfig::default()
            },
        ),
        (
            "semantic-only",
            VerifAiConfig {
                use_content_index: false,
                use_reranker: false,
                ..VerifAiConfig::default()
            },
        ),
        (
            "combined-rrf",
            VerifAiConfig {
                use_reranker: false,
                ..VerifAiConfig::default()
            },
        ),
    ];
    eprintln!("--- index ablation (recall@3 text / recall@5 table) ---");
    let mut rows = Vec::new();
    for (name, config) in configs {
        let mut ctx = ExperimentContext::new(&scale.spec(42), tasks, claims, config);
        let (text, table) = recalls_at(&mut ctx, 3, 5);
        eprintln!("{name:>14}: text {text:.2}  table {table:.2}");
        rows.push(json!({ "index": name, "tuple_text_recall": text, "claim_table_recall": table }));
    }
    json!(rows)
}

fn ablation_reranker(scale: BenchScale) -> serde_json::Value {
    // With the reranker, the pipeline refines a coarse top-50 down to k′; the
    // question is whether the relevant instance survives at the small k′.
    let (tasks, claims) = scale.workload();
    let mut rows = Vec::new();
    eprintln!("--- reranker ablation (relevant instance in final evidence set) ---");
    for (name, use_reranker) in [("without-reranker", false), ("with-reranker", true)] {
        let config = VerifAiConfig {
            use_reranker,
            ..VerifAiConfig::default()
        };
        let ctx = ExperimentContext::new(&scale.spec(42), tasks, claims, config);
        let mut tuple_hit = 0usize;
        let tasks_cloned = ctx.tasks.clone();
        for task in &tasks_cloned {
            let object = ctx.system.impute(task);
            let evidence = ctx.system.discover_evidence(&object);
            if evidence
                .iter()
                .any(|(i, _)| i.id() == InstanceId::Tuple(task.counterpart))
            {
                tuple_hit += 1;
            }
        }
        let mut table_hit = 0usize;
        let claims_cloned = ctx.claims.clone();
        for claim in &claims_cloned {
            let object = ctx.system.claim_object(claim);
            let evidence = ctx.system.discover_evidence(&object);
            if evidence
                .iter()
                .any(|(i, _)| i.id() == InstanceId::Table(claim.table))
            {
                table_hit += 1;
            }
        }
        let tuple_rate = tuple_hit as f64 / tasks_cloned.len().max(1) as f64;
        let table_rate = table_hit as f64 / claims_cloned.len().max(1) as f64;
        eprintln!("{name:>18}: counterpart tuple {tuple_rate:.2}  source table {table_rate:.2}");
        rows.push(json!({
            "setting": name,
            "counterpart_in_final": tuple_rate,
            "source_table_in_final": table_rate,
        }));
    }
    json!(rows)
}

fn ablation_trust(scale: BenchScale) -> serde_json::Value {
    // Lake with corrupted generative-model pages; compare final-decision
    // accuracy (does the decision match whether the imputed value was right?)
    // with trust weighting on and off.
    let mut spec = scale.spec(42);
    spec.corrupted_docs = match scale {
        BenchScale::Tiny => 20,
        _ => 150,
    };
    let (tasks, _) = scale.workload();
    let mut rows = Vec::new();
    eprintln!("--- trust ablation (decision accuracy with corrupted source) ---");
    for (name, use_trust_weighting) in [("majority", false), ("trust-weighted", true)] {
        let config = VerifAiConfig {
            use_trust_weighting,
            ..VerifAiConfig::default()
        };
        let ctx = ExperimentContext::new(&spec, tasks, 10, config);
        let mut correct = 0usize;
        let mut decided = 0usize;
        let tasks_cloned = ctx.tasks.clone();
        for task in &tasks_cloned {
            let object = ctx.system.impute(task);
            let imputed_ok = match &object {
                verifai::DataObject::ImputedCell(c) => c.value.matches(&task.truth),
                verifai::DataObject::TextClaim(_) => unreachable!(),
            };
            let report = ctx.system.verify_object(&object);
            match report.decision {
                verifai::Verdict::Verified => {
                    decided += 1;
                    correct += imputed_ok as usize;
                }
                verifai::Verdict::Refuted => {
                    decided += 1;
                    correct += (!imputed_ok) as usize;
                }
                verifai::Verdict::NotRelated | verifai::Verdict::Unknown => {}
            }
        }
        let acc = correct as f64 / decided.max(1) as f64;
        eprintln!("{name:>16}: decision accuracy {acc:.2} over {decided} decided");
        rows.push(json!({ "setting": name, "decision_accuracy": acc, "decided": decided }));
    }
    json!(rows)
}

fn ablation_kg(scale: BenchScale) -> serde_json::Value {
    // §5 extension: does adding the knowledge-graph modality to the evidence
    // plan change decision quality on the completion workload?
    let (tasks, _) = scale.workload();
    let mut rows = Vec::new();
    eprintln!("--- KG-modality ablation (completion decisions) ---");
    for (name, k_kg) in [("without-kg", 0usize), ("with-kg", 3)] {
        let config = VerifAiConfig {
            k_kg,
            ..VerifAiConfig::default()
        };
        let ctx = ExperimentContext::new(&scale.spec(42), tasks, 10, config);
        let mut correct = 0usize;
        let mut decided = 0usize;
        for task in &ctx.tasks {
            let object = ctx.system.impute(task);
            let imputed_ok = match &object {
                verifai::DataObject::ImputedCell(cell) => cell.value.matches(&task.truth),
                verifai::DataObject::TextClaim(_) => unreachable!(),
            };
            match ctx.system.verify_object(&object).decision {
                verifai::Verdict::Verified => {
                    decided += 1;
                    correct += imputed_ok as usize;
                }
                verifai::Verdict::Refuted => {
                    decided += 1;
                    correct += (!imputed_ok) as usize;
                }
                verifai::Verdict::NotRelated | verifai::Verdict::Unknown => {}
            }
        }
        let acc = correct as f64 / decided.max(1) as f64;
        eprintln!("{name:>12}: decision accuracy {acc:.2} over {decided} decided");
        rows.push(json!({ "setting": name, "decision_accuracy": acc, "decided": decided }));
    }
    json!(rows)
}

fn bench_ablations(c: &mut Criterion) {
    let scale = BenchScale::from_env();
    eprintln!("\n=== Ablations, scale = {} ===", scale.label());
    let k_sweep = ablation_k_sweep(scale);
    let index_types = ablation_index_types(scale);
    let reranker = ablation_reranker(scale);
    let trust = ablation_trust(scale);
    let kg = ablation_kg(scale);
    write_artifact(
        &format!("ablations_{}", scale.label()),
        &json!({
            "scale": scale.label(),
            "k_sweep": k_sweep,
            "index_types": index_types,
            "reranker": reranker,
            "trust": trust,
            "kg": kg,
        }),
    );

    // Time one representative kernel: recall sweep at k=5 on a prebuilt system.
    let (tasks, claims) = BenchScale::Tiny.workload();
    let mut ctx = ExperimentContext::new(
        &BenchScale::Tiny.spec(42),
        tasks,
        claims,
        VerifAiConfig::paper_setting(),
    );
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("recall_sweep_kernel/tiny", |b| {
        b.iter(|| recalls_at(&mut ctx, 5, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
