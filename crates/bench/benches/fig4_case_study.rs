//! Regenerates the paper's Figure 4 — the case study of verifying a textual
//! claim against two retrieved tables: E1 refuted through an aggregation
//! query, E2 not related because it concerns a different year, each with the
//! model's natural-language explanation.
//!
//! ```text
//! cargo bench -p verifai-bench --bench fig4_case_study
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;
use verifai::experiments::figure4;
use verifai::report::render_fig4;
use verifai::Verdict;
use verifai_bench::{paper_context, write_artifact};

fn bench_fig4(c: &mut Criterion) {
    let (mut ctx, scale) = paper_context();

    let case = figure4(&mut ctx).expect("championship tables exist at every scale");
    eprintln!("\n=== Figure 4 (case study), scale = {} ===", scale.label());
    eprintln!("{}", render_fig4(&case));
    assert_eq!(
        case.evidence[0].verdict,
        Verdict::Refuted,
        "E1 must be refuted"
    );
    assert_eq!(
        case.evidence[1].verdict,
        Verdict::NotRelated,
        "E2 must be not related"
    );
    write_artifact(
        &format!("figure4_{}", scale.label()),
        &json!({
            "scale": scale.label(),
            "claim": case.claim_text,
            "evidence": case.evidence.iter().map(|e| json!({
                "caption": e.caption,
                "verdict": e.verdict.to_string(),
                "explanation": e.explanation,
            })).collect::<Vec<_>>(),
        }),
    );

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function(format!("case_study/{}", scale.label()), |b| {
        b.iter(|| figure4(&mut ctx))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
