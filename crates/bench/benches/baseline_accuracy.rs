//! Regenerates the paper's §4 baseline paragraph: ungrounded ChatGPT accuracy
//! on tuple imputation (paper: 0.52) and claim judgment (paper: 0.54) — the
//! numbers that motivate post-generation verification.
//!
//! ```text
//! cargo bench -p verifai-bench --bench baseline_accuracy
//! VERIFAI_BENCH_SCALE=paper cargo bench -p verifai-bench --bench baseline_accuracy
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;
use verifai::experiments::baseline;
use verifai::report::render_baseline;
use verifai_bench::{paper_context, write_artifact};

fn bench_baseline(c: &mut Criterion) {
    let (ctx, scale) = paper_context();

    // Produce and publish the paper-facing numbers once.
    let result = baseline(&ctx);
    eprintln!(
        "\n=== Baseline (ungrounded generation), scale = {} ===",
        scale.label()
    );
    eprintln!("{}", render_baseline(&result));
    eprintln!("paper: imputation 0.52, claims 0.54\n");
    write_artifact(
        &format!("baseline_{}", scale.label()),
        &json!({
            "scale": scale.label(),
            "imputation_accuracy": result.imputation.value(),
            "imputation_n": result.imputation.total,
            "claim_accuracy": result.claims.value(),
            "claim_n": result.claims.total,
            "paper": { "imputation": 0.52, "claims": 0.54 },
        }),
    );

    // Time the experiment kernel.
    let mut group = c.benchmark_group("baseline");
    group.sample_size(10);
    group.bench_function(format!("ungrounded_generation/{}", scale.label()), |b| {
        b.iter(|| baseline(&ctx))
    });
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
