//! Regenerates the paper's Table 1 — recall on retrieved data instances:
//!
//! | generated     | retrieved | k | paper |
//! |---------------|-----------|---|-------|
//! | tuple         | tuple     | 3 | 0.99  |
//! | tuple         | text      | 3 | 0.58  |
//! | textual claim | table     | 5 | 0.88  |
//!
//! Retrieval uses the §4 setting (the BM25 content index, i.e. the
//! Elasticsearch substitute, with no reranker). The absolute values are
//! calibrated through the generator's ambiguity knobs; the reproduced *shape*
//! is the ordering tuple→tuple ≫ claim→table ≫ tuple→text at small k.
//!
//! ```text
//! cargo bench -p verifai-bench --bench table1_retrieval
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use serde_json::json;
use verifai::experiments::table1;
use verifai::report::render_table1;
use verifai_bench::{paper_context, write_artifact};
use verifai_lake::InstanceKind;

fn bench_table1(c: &mut Criterion) {
    let (mut ctx, scale) = paper_context();

    let rows = table1(&mut ctx);
    eprintln!(
        "\n=== Table 1 (retrieval recall), scale = {} ===",
        scale.label()
    );
    eprintln!("{}", render_table1(&rows));
    eprintln!("paper: 0.99 / 0.58 / 0.88\n");
    write_artifact(
        &format!("table1_{}", scale.label()),
        &json!({
            "scale": scale.label(),
            "rows": rows.iter().map(|r| json!({
                "generated": r.generated,
                "retrieved": r.retrieved,
                "k": r.k,
                "recall": r.recall,
            })).collect::<Vec<_>>(),
            "paper": [0.99, 0.58, 0.88],
        }),
    );

    // Time the retrieval kernels per modality.
    let mut group = c.benchmark_group("table1_retrieval");
    group.sample_size(10);
    let task_query = {
        let object = ctx.system.impute(&ctx.tasks[0]);
        verifai::VerifAi::query_of(&object)
    };
    let claim_query = ctx.claims[0].text.clone();
    group.bench_function(format!("tuple_query_top3/{}", scale.label()), |b| {
        b.iter(|| ctx.system.retrieve(&task_query, InstanceKind::Tuple, 3))
    });
    group.bench_function(format!("text_query_top3/{}", scale.label()), |b| {
        b.iter(|| ctx.system.retrieve(&task_query, InstanceKind::Text, 3))
    });
    group.bench_function(format!("table_query_top5/{}", scale.label()), |b| {
        b.iter(|| ctx.system.retrieve(&claim_query, InstanceKind::Table, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
