//! Serving-layer benchmarks: evidence-cache and micro-batching effect on
//! closed-loop verification throughput.
//!
//! Two axes, four configurations over the same mixed workload:
//! `cached` vs `cold` (evidence cache on/off) and `batched` vs `unbatched`
//! (micro-batch coalescing up to 8 vs 1 request per worker wakeup).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use verifai::{DataObject, VerifAi, VerifAiConfig};
use verifai_claims::ClaimGenConfig;
use verifai_datagen::{build, claim_workload, completion_workload, LakeSpec};
use verifai_service::{RequestOutcome, ServiceConfig, ServiceStats, Ticket, VerificationService};

fn workload(sys: &VerifAi, n_each: usize, repeats: usize, seed: u64) -> Vec<DataObject> {
    let mut pool: Vec<DataObject> = completion_workload(sys.generated(), n_each, seed)
        .iter()
        .map(|t| sys.impute(t))
        .collect();
    pool.extend(
        claim_workload(
            sys.generated(),
            n_each,
            ClaimGenConfig {
                seed,
                ..ClaimGenConfig::default()
            },
        )
        .iter()
        .map(|c| sys.claim_object(c)),
    );
    let len = pool.len();
    pool.into_iter().cycle().take(len * repeats).collect()
}

/// Drive one service lifecycle over the whole workload and return the final
/// stats (keeps the accounting invariant observable from the bench too).
fn serve(sys: &Arc<VerifAi>, config: &ServiceConfig, workload: &[DataObject]) -> ServiceStats {
    let service = VerificationService::new(Arc::clone(sys), config.clone());
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|o| {
            service
                .submit(o.clone())
                .expect("bench queue sized for workload")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            RequestOutcome::Completed(_) => {}
            RequestOutcome::Shed => panic!("bench service must not shed"),
        }
    }
    service.shutdown()
}

fn bench_service(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(7)),
        VerifAiConfig::default(),
    ));
    let requests = workload(&sys, 8, 4, 7);
    let base = ServiceConfig {
        workers: 4,
        queue_capacity: requests.len() + 1,
        high_water: requests.len() + 1,
        ..ServiceConfig::default()
    };

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for (label, cache_capacity) in [("cached", 1024usize), ("cold", 0usize)] {
        let config = ServiceConfig {
            cache_capacity,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("cache", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    for (label, max_batch) in [("batched", 8usize), ("unbatched", 1usize)] {
        let config = ServiceConfig {
            max_batch,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("batch", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
