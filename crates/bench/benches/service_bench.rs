//! Serving-layer benchmarks: evidence-cache and micro-batching effect on
//! closed-loop verification throughput.
//!
//! Two axes, four configurations over the same mixed workload:
//! `cached` vs `cold` (evidence cache on/off) and `batched` vs `unbatched`
//! (micro-batch coalescing up to 8 vs 1 request per worker wakeup).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use verifai::{DataObject, VerifAi, VerifAiConfig};
use verifai_claims::ClaimGenConfig;
use verifai_datagen::{build, claim_workload, completion_workload, LakeSpec};
use verifai_service::{RequestOutcome, ServiceConfig, ServiceStats, Ticket, VerificationService};

fn workload(sys: &VerifAi, n_each: usize, repeats: usize, seed: u64) -> Vec<DataObject> {
    let mut pool: Vec<DataObject> = completion_workload(sys.generated(), n_each, seed)
        .iter()
        .map(|t| sys.impute(t))
        .collect();
    pool.extend(
        claim_workload(
            sys.generated(),
            n_each,
            ClaimGenConfig {
                seed,
                ..ClaimGenConfig::default()
            },
        )
        .iter()
        .map(|c| sys.claim_object(c)),
    );
    let len = pool.len();
    pool.into_iter().cycle().take(len * repeats).collect()
}

/// Drive one service lifecycle over the whole workload and return the final
/// stats (keeps the accounting invariant observable from the bench too).
fn serve(sys: &Arc<VerifAi>, config: &ServiceConfig, workload: &[DataObject]) -> ServiceStats {
    let service = VerificationService::new(Arc::clone(sys), config.clone());
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|o| {
            service
                .submit(o.clone())
                .expect("bench queue sized for workload")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            RequestOutcome::Completed(_) => {}
            RequestOutcome::Shed => panic!("bench service must not shed"),
            RequestOutcome::Failed(error) => panic!("bench request failed: {error}"),
        }
    }
    service.shutdown()
}

/// Contended batch verification: eight worker threads share one provenance
/// sink. Per-stage batching bounds the contention at four lock
/// acquisitions per object — retrieval, rerank, verify, decision — however
/// many candidates flow through, where the per-record discipline this
/// replaced took one lock per provenance record.
fn bench_contended_provenance(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(9)),
        VerifAiConfig::default(),
    ));
    let objects = workload(&sys, 8, 1, 9);

    // Lock accounting, measured outside the timed loop: the batching
    // counter is the number of sink lock acquisitions.
    let locks_before = sys.provenance_batches();
    let records_before = sys.provenance().len();
    let _ = sys.verify_batch(&objects, 8);
    let locks = sys.provenance_batches() - locks_before;
    let records = sys.provenance().len() - records_before;
    assert_eq!(
        locks,
        4 * objects.len() as u64,
        "four flushes per object, independent of evidence volume"
    );
    println!(
        "provenance contention: {records} records in {locks} lock acquisitions \
         ({:.1} records/lock, {} locks/object vs {} with per-record locking)",
        records as f64 / locks as f64,
        locks / objects.len() as u64,
        records / objects.len(),
    );

    let mut group = c.benchmark_group("provenance");
    group.sample_size(10);
    group.bench_function("verify_batch_contended", |b| {
        b.iter(|| sys.verify_batch(&objects, 8))
    });
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(7)),
        VerifAiConfig::default(),
    ));
    let requests = workload(&sys, 8, 4, 7);
    let base = ServiceConfig {
        workers: 4,
        queue_capacity: requests.len() + 1,
        high_water: requests.len() + 1,
        ..ServiceConfig::default()
    };

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for (label, cache_capacity) in [("cached", 1024usize), ("cold", 0usize)] {
        let config = ServiceConfig {
            cache_capacity,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("cache", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    for (label, max_batch) in [("batched", 8usize), ("unbatched", 1usize)] {
        let config = ServiceConfig {
            max_batch,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("batch", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service, bench_contended_provenance);
criterion_main!(benches);
