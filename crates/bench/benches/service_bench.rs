//! Serving-layer benchmarks: evidence-cache and micro-batching effect on
//! closed-loop verification throughput, plus the cost of full
//! observability (per-stage histograms, traces, flight recorder) against
//! `ObsConfig::off()`.
//!
//! Two axes, four configurations over the same mixed workload:
//! `cached` vs `cold` (evidence cache on/off) and `batched` vs `unbatched`
//! (micro-batch coalescing up to 8 vs 1 request per worker wakeup).
//!
//! Besides the usual criterion report, `bench_obs_overhead` writes
//! `BENCH_service.json` to the repository root (see
//! `scripts/bench_smoke.sh`) recording the measured obs-on/obs-off
//! overhead and the scatter/gather routing overhead at 1/2/4/8 shards;
//! those measurements run even when a criterion filter skips the
//! registered benchmarks.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use verifai::{DataObject, ObsConfig, SemanticBackend, VerifAi, VerifAiConfig};
use verifai_claims::ClaimGenConfig;
use verifai_cluster::{build_cluster, ClusterConfig};
use verifai_datagen::{build, claim_workload, completion_workload, LakeSpec};
use verifai_lake::InstanceKind;
use verifai_obs::{meter, Clock, Profiler, SamplingPolicy, SystemClock};
use verifai_service::{
    QualityConfig, RequestOutcome, ServiceConfig, ServiceStats, Ticket, VerificationService,
};

fn workload(sys: &VerifAi, n_each: usize, repeats: usize, seed: u64) -> Vec<DataObject> {
    let mut pool: Vec<DataObject> = completion_workload(sys.generated(), n_each, seed)
        .iter()
        .map(|t| sys.impute(t))
        .collect();
    pool.extend(
        claim_workload(
            sys.generated(),
            n_each,
            ClaimGenConfig {
                seed,
                ..ClaimGenConfig::default()
            },
        )
        .iter()
        .map(|c| sys.claim_object(c)),
    );
    let len = pool.len();
    pool.into_iter().cycle().take(len * repeats).collect()
}

/// Drive one service lifecycle over the whole workload and return the final
/// stats (keeps the accounting invariant observable from the bench too).
fn serve(sys: &Arc<VerifAi>, config: &ServiceConfig, workload: &[DataObject]) -> ServiceStats {
    serve_with_obs(sys, config, ObsConfig::default(), workload)
}

/// [`serve`] with an explicit observability configuration.
fn serve_with_obs(
    sys: &Arc<VerifAi>,
    config: &ServiceConfig,
    obs: ObsConfig,
    workload: &[DataObject],
) -> ServiceStats {
    let service = VerificationService::with_obs(Arc::clone(sys), config.clone(), obs);
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|o| {
            service
                .submit(o.clone())
                .expect("bench queue sized for workload")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            RequestOutcome::Completed(_) => {}
            RequestOutcome::Shed => panic!("bench service must not shed"),
            RequestOutcome::Failed(error) => panic!("bench request failed: {error}"),
        }
    }
    service.shutdown()
}

/// Contended batch verification: eight worker threads share one provenance
/// sink. Per-stage batching bounds the contention at four lock
/// acquisitions per object — retrieval, rerank, verify, decision — however
/// many candidates flow through, where the per-record discipline this
/// replaced took one lock per provenance record.
fn bench_contended_provenance(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(9)),
        VerifAiConfig::default(),
    ));
    let objects = workload(&sys, 8, 1, 9);

    // Lock accounting, measured outside the timed loop: the batching
    // counter is the number of sink lock acquisitions.
    let locks_before = sys.provenance_batches();
    let records_before = sys.provenance().len();
    let _ = sys.verify_batch(&objects, 8);
    let locks = sys.provenance_batches() - locks_before;
    let records = sys.provenance().len() - records_before;
    assert_eq!(
        locks,
        4 * objects.len() as u64,
        "four flushes per object, independent of evidence volume"
    );
    println!(
        "provenance contention: {records} records in {locks} lock acquisitions \
         ({:.1} records/lock, {} locks/object vs {} with per-record locking)",
        records as f64 / locks as f64,
        locks / objects.len() as u64,
        records / objects.len(),
    );

    let mut group = c.benchmark_group("provenance");
    group.sample_size(10);
    group.bench_function("verify_batch_contended", |b| {
        b.iter(|| sys.verify_batch(&objects, 8))
    });
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(7)),
        VerifAiConfig::default(),
    ));
    let requests = workload(&sys, 8, 4, 7);
    let base = ServiceConfig {
        workers: 4,
        queue_capacity: requests.len() + 1,
        high_water: requests.len() + 1,
        ..ServiceConfig::default()
    };

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for (label, cache_capacity) in [("cached", 1024usize), ("cold", 0usize)] {
        let config = ServiceConfig {
            cache_capacity,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("cache", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    for (label, max_batch) in [("batched", 8usize), ("unbatched", 1usize)] {
        let config = ServiceConfig {
            max_batch,
            ..base.clone()
        };
        group.bench_with_input(BenchmarkId::new("batch", label), &config, |b, config| {
            b.iter(|| serve(&sys, config, &requests))
        });
    }
    group.finish();
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// Full observability (per-stage histograms, verdict counters, traces,
/// flight recorder) vs `ObsConfig::off()` over the same closed-loop
/// workload. The acceptance bar is <2% overhead; the measured number is
/// written to `BENCH_service.json` rather than asserted, since a loaded
/// host can push any wall-clock ratio around.
fn bench_obs_overhead(c: &mut Criterion) {
    let sys = Arc::new(VerifAi::build(
        build(&LakeSpec::tiny(8)),
        VerifAiConfig::default(),
    ));
    let requests = workload(&sys, 8, 2, 8);
    let config = ServiceConfig {
        workers: 4,
        queue_capacity: requests.len() + 1,
        high_water: requests.len() + 1,
        ..ServiceConfig::default()
    };

    // Manual best-of-N measurement feeding the artifact — runs on every
    // invocation, even when a criterion filter (as in the smoke script)
    // skips the registered benchmarks below.
    let reps = 5;
    let enabled_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, ObsConfig::default(), &requests);
    });
    let disabled_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, ObsConfig::off(), &requests);
    });
    let overhead_pct = (enabled_ns as f64 / disabled_ns.max(1) as f64 - 1.0) * 100.0;
    let stats = serve_with_obs(&sys, &config, ObsConfig::default(), &requests);
    eprintln!(
        "obs overhead: enabled {:.2} ms vs disabled {:.2} ms over {} requests \
         (best of {reps}) = {overhead_pct:+.2}% (target < 2%)",
        enabled_ns as f64 / 1e6,
        disabled_ns as f64 / 1e6,
        requests.len(),
    );

    // Tracing axes on top of the enabled baseline: tail-based sampling
    // (keep/drop at completion time) and histogram exemplar pinning (one
    // seqlocked slot CAS per latency record). Both measured against the
    // same disabled floor; exemplar-pinning cost is additionally isolated
    // as exemplars-on vs exemplars-off with everything else identical.
    let tail_config = ObsConfig::default().with_sampling(SamplingPolicy::tail(4, 8));
    let tail_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, tail_config.clone(), &requests);
    });
    let tail_pct = (tail_ns as f64 / disabled_ns.max(1) as f64 - 1.0) * 100.0;
    let no_exemplars = ObsConfig {
        exemplars: false,
        ..ObsConfig::default()
    };
    let no_exemplar_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, no_exemplars.clone(), &requests);
    });
    let exemplar_pct = (enabled_ns as f64 / no_exemplar_ns.max(1) as f64 - 1.0) * 100.0;
    let tail_stats = serve_with_obs(&sys, &config, tail_config, &requests);
    eprintln!(
        "tracing: tail-sampling on {:.2} ms ({tail_pct:+.2}% vs disabled, {} of {} \
         healthy traces sampled out); exemplar pinning {exemplar_pct:+.2}% \
         (on {:.2} ms vs off {:.2} ms)",
        tail_ns as f64 / 1e6,
        tail_stats.traces_sampled_out,
        tail_stats.traces_recorded,
        enabled_ns as f64 / 1e6,
        no_exemplar_ns as f64 / 1e6,
    );

    // Alert-path overhead: observability on in both runs, quality
    // monitoring (windows, drift scoring, SLO burn, alert log) on vs off —
    // with a window short enough that real rolls happen mid-run, so the
    // roll path itself is inside the measurement, not just the absorbers.
    let quality_on = ServiceConfig {
        quality: QualityConfig {
            window: Duration::from_millis(5),
            ..QualityConfig::default()
        },
        ..config.clone()
    };
    let quality_off = ServiceConfig {
        quality: QualityConfig::off(),
        ..config.clone()
    };
    let quality_on_ns = best_ns(reps, || {
        serve_with_obs(&sys, &quality_on, ObsConfig::default(), &requests);
    });
    let quality_off_ns = best_ns(reps, || {
        serve_with_obs(&sys, &quality_off, ObsConfig::default(), &requests);
    });
    let quality_overhead_pct = (quality_on_ns as f64 / quality_off_ns.max(1) as f64 - 1.0) * 100.0;
    let quality_stats = serve_with_obs(&sys, &quality_on, ObsConfig::default(), &requests);
    eprintln!(
        "quality/alert-path overhead: on {:.2} ms vs off {:.2} ms (best of {reps}) \
         = {quality_overhead_pct:+.2}% across {} windows",
        quality_on_ns as f64 / 1e6,
        quality_off_ns as f64 / 1e6,
        quality_stats.quality.windows,
    );

    // Metering and profiler overhead. Cost charging is always compiled in
    // and billing is always-on; the kill-switch exists solely so this A/B
    // can price the charge sites (thread-local counter bumps on the kernel
    // inner loops). The profiler arm layers the 99 Hz cooperative sampler
    // on top of the metered baseline — one clock read per scope boundary.
    let metered_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, ObsConfig::default(), &requests);
    });
    meter::set_enabled(false);
    let unmetered_ns = best_ns(reps, || {
        serve_with_obs(&sys, &config, ObsConfig::default(), &requests);
    });
    meter::set_enabled(true);
    let meter_pct = (metered_ns as f64 / unmetered_ns.max(1) as f64 - 1.0) * 100.0;
    let profiled_config = ServiceConfig {
        profiler: Some(Arc::new(Profiler::new(
            Arc::new(SystemClock) as Arc<dyn Clock>
        ))),
        ..config.clone()
    };
    let profiled_ns = best_ns(reps, || {
        serve_with_obs(&sys, &profiled_config, ObsConfig::default(), &requests);
    });
    let profiler_pct = (profiled_ns as f64 / metered_ns.max(1) as f64 - 1.0) * 100.0;
    eprintln!(
        "metering: on {:.2} ms vs kill-switched {:.2} ms (best of {reps}) = \
         {meter_pct:+.2}% (target < 2%); profiler sampling adds {profiler_pct:+.2}% \
         ({:.2} ms)",
        metered_ns as f64 / 1e6,
        unmetered_ns as f64 / 1e6,
        profiled_ns as f64 / 1e6,
    );

    // Scatter/gather overhead: per-modality retrieval through the sharded
    // router (1/2/4/8 shards) vs the single-lake build, both on the exact
    // flat backend so every topology returns identical hits and the delta
    // is pure routing cost (fan-out, per-shard search, k-way merge).
    let flat = VerifAiConfig {
        semantic_backend: SemanticBackend::Flat,
        ..VerifAiConfig::default()
    };
    let spec = LakeSpec::tiny(8);
    let single = VerifAi::build(build(&spec), flat);
    let queries: Vec<String> = workload(&Arc::new(VerifAi::build(build(&spec), flat)), 8, 1, 8)
        .iter()
        .map(VerifAi::query_of)
        .collect();
    let kinds = [
        InstanceKind::Tuple,
        InstanceKind::Table,
        InstanceKind::Text,
        InstanceKind::Kg,
    ];
    let retrieval_pass = |sys: &VerifAi| {
        for query in &queries {
            for kind in kinds {
                std::hint::black_box(sys.retrieve(query, kind, 12));
            }
        }
    };
    let single_ns = best_ns(reps, || retrieval_pass(&single));
    let mut scatter_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cluster = build_cluster(build(&spec), flat, ClusterConfig::with_shards(shards));
        let routed_ns = best_ns(reps, || retrieval_pass(&cluster.system));
        let overhead = (routed_ns as f64 / single_ns.max(1) as f64 - 1.0) * 100.0;
        eprintln!(
            "scatter/gather: {shards} shard(s) {:.2} ms vs single-lake {:.2} ms \
             (best of {reps}) = {overhead:+.2}%",
            routed_ns as f64 / 1e6,
            single_ns as f64 / 1e6,
        );
        scatter_rows.push(serde_json::json!({
            "shards": shards,
            "routed_ms": routed_ns as f64 / 1e6,
            "overhead_vs_single_pct": overhead,
        }));
    }

    let artifact = serde_json::json!({
        "workload": {
            "requests": requests.len(),
            "workers": config.workers,
        },
        "obs_overhead": {
            "reps": reps,
            "enabled_ms": enabled_ns as f64 / 1e6,
            "disabled_ms": disabled_ns as f64 / 1e6,
            "overhead_pct": overhead_pct,
            "target_pct": 2.0,
        },
        "scatter_gather": {
            "reps": reps,
            "queries": queries.len() * kinds.len(),
            "single_lake_ms": single_ns as f64 / 1e6,
            "per_shard_count": scatter_rows,
        },
        "tracing_overhead": {
            "reps": reps,
            "tail_sampling_ms": tail_ns as f64 / 1e6,
            "tail_sampling_vs_disabled_pct": tail_pct,
            "traces_sampled_out": tail_stats.traces_sampled_out,
            "exemplars_on_ms": enabled_ns as f64 / 1e6,
            "exemplars_off_ms": no_exemplar_ns as f64 / 1e6,
            "exemplar_pinning_pct": exemplar_pct,
            "target_pct": 2.0,
        },
        "meter_overhead": {
            "reps": reps,
            "metered_ms": metered_ns as f64 / 1e6,
            "unmetered_ms": unmetered_ns as f64 / 1e6,
            "overhead_pct": meter_pct,
            "profiled_ms": profiled_ns as f64 / 1e6,
            "profiler_overhead_pct": profiler_pct,
            "profiler_hz": 99,
            "target_pct": 2.0,
        },
        "quality_overhead": {
            "reps": reps,
            "on_ms": quality_on_ns as f64 / 1e6,
            "off_ms": quality_off_ns as f64 / 1e6,
            "overhead_pct": quality_overhead_pct,
            "windows_rolled": quality_stats.quality.windows,
            "window_ms": 5,
        },
        "enabled_run": {
            "completed": stats.completed,
            "cache_hits": stats.cache.hits,
            "traces_recorded": stats.traces_recorded,
            "verdicts_total": stats.verdicts.total(),
            "latency_p50_us": stats.latency_p50.as_micros() as u64,
            "latency_p95_us": stats.latency_p95.as_micros() as u64,
            "verify_p95_us": stats.stage_latency.verify.quantile(0.95).as_micros() as u64,
        },
    });
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_service.json");
    let rendered = serde_json::to_string_pretty(&artifact).unwrap_or_default();
    match std::fs::write(&path, format!("{rendered}\n")) {
        Ok(()) => eprintln!("artifact written: {}", path.display()),
        Err(e) => eprintln!("artifact write failed at {}: {e}", path.display()),
    }

    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.bench_function("enabled", |b| {
        b.iter(|| serve_with_obs(&sys, &config, ObsConfig::default(), &requests))
    });
    group.bench_function("disabled", |b| {
        b.iter(|| serve_with_obs(&sys, &config, ObsConfig::off(), &requests))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_service,
    bench_contended_provenance,
    bench_obs_overhead
);
criterion_main!(benches);
