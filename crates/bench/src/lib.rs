//! Shared harness utilities for the VerifAI benchmark suite.
//!
//! Every bench in `benches/` regenerates one table or figure of the paper's
//! §4 evaluation: it prints the paper-layout result table to stderr, writes a
//! machine-readable artifact under `target/verifai-artifacts/`, and then lets
//! Criterion time the experiment kernel.
//!
//! Scale is controlled by `VERIFAI_BENCH_SCALE` (`tiny` | `small` (default) |
//! `paper`). The `paper` preset matches the corpus sizes of §4 (≈19.5k tables,
//! ≈270k tuples, ≈13.8k text files) and takes minutes; `small` preserves every
//! qualitative shape in seconds.

use std::io::Write;
use std::path::PathBuf;
use verifai::experiments::ExperimentContext;
use verifai::VerifAiConfig;
use verifai_datagen::LakeSpec;

/// Benchmark scale, from `VERIFAI_BENCH_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Milliseconds; CI smoke.
    Tiny,
    /// Seconds; default.
    Small,
    /// Paper corpus sizes; minutes.
    Paper,
}

impl BenchScale {
    /// Read the scale from the environment.
    pub fn from_env() -> BenchScale {
        match std::env::var("VERIFAI_BENCH_SCALE").as_deref() {
            Ok("tiny") => BenchScale::Tiny,
            Ok("paper") => BenchScale::Paper,
            _ => BenchScale::Small,
        }
    }

    /// The lake spec for this scale.
    pub fn spec(self, seed: u64) -> LakeSpec {
        match self {
            BenchScale::Tiny => LakeSpec::tiny(seed),
            BenchScale::Small => LakeSpec::small(seed),
            BenchScale::Paper => LakeSpec::paper_scale(seed),
        }
    }

    /// Workload sizes (tasks, claims): the paper uses 100 tuples and 1,300
    /// claims; smaller scales shrink the claim count to keep benches quick.
    pub fn workload(self) -> (usize, usize) {
        match self {
            BenchScale::Tiny => (20, 40),
            BenchScale::Small => (100, 300),
            BenchScale::Paper => (100, 1_300),
        }
    }

    /// Label for bench ids and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            BenchScale::Tiny => "tiny",
            BenchScale::Small => "small",
            BenchScale::Paper => "paper",
        }
    }
}

/// Build the standard experiment context at the environment-selected scale,
/// using the paper's §4 retrieval setting (content index only, no reranker).
pub fn paper_context() -> (ExperimentContext, BenchScale) {
    let scale = BenchScale::from_env();
    let (tasks, claims) = scale.workload();
    let ctx = ExperimentContext::new(
        &scale.spec(42),
        tasks,
        claims,
        VerifAiConfig::paper_setting(),
    );
    (ctx, scale)
}

/// Build a context with the full pipeline (semantic index + reranker) enabled.
pub fn full_pipeline_context() -> (ExperimentContext, BenchScale) {
    let scale = BenchScale::from_env();
    let (tasks, claims) = scale.workload();
    let ctx = ExperimentContext::new(&scale.spec(42), tasks, claims, VerifAiConfig::default());
    (ctx, scale)
}

/// Write a JSON artifact under `target/verifai-artifacts/<name>.json`.
pub fn write_artifact(name: &str, value: &serde_json::Value) {
    let dir = artifact_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(file) = std::fs::File::create(&path) {
        let mut w = std::io::BufWriter::new(file);
        let _ = writeln!(
            w,
            "{}",
            serde_json::to_string_pretty(value).unwrap_or_default()
        );
        eprintln!("artifact written: {}", path.display());
    }
}

/// The artifact directory (under the workspace `target/`).
pub fn artifact_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("verifai-artifacts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_mappings_are_consistent() {
        for scale in [BenchScale::Tiny, BenchScale::Small, BenchScale::Paper] {
            let spec = scale.spec(1);
            assert!(spec.expected_tables() > 0);
            let (t, c) = scale.workload();
            assert!(t > 0 && c > 0);
            assert!(!scale.label().is_empty());
        }
    }

    #[test]
    fn tiny_context_builds() {
        let ctx = ExperimentContext::new(&LakeSpec::tiny(1), 5, 10, VerifAiConfig::paper_setting());
        assert_eq!(ctx.tasks.len(), 5);
        assert_eq!(ctx.claims.len(), 10);
    }
}
