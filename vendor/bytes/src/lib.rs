//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the index persistence layer uses: [`BytesMut`] as a
//! growable write buffer, [`Bytes`] as a cheaply cloneable read cursor, and
//! the [`Buf`]/[`BufMut`] trait methods for little-endian scalar I/O.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer with a read cursor.
///
/// Unlike the real crate this is an `Arc<[u8]>` plus offsets — `clone` and
/// [`Buf::copy_to_bytes`] are O(1) in data, O(n) only when slicing borrowed
/// static data would require ownership.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied once; the real crate borrows, but no
    /// caller in this workspace is length-sensitive).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of a sub-range of the remaining bytes; O(1), shares storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let from = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let to = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(from <= to && to <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + from,
            end: self.start + to,
        }
    }

    fn split_front(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out =
            Bytes { data: self.data.clone(), start: self.start, end: self.start + len };
        self.start += len;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Split off the next `len` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_front(len)
    }
}

/// Write-side operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"tail");
        let mut r = buf.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 4);
        let tail = r.copy_to_bytes(4);
        assert_eq!(&*tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn from_static_reads_back() {
        let mut b = Bytes::from_static(b"VFAI\x01\x02");
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"VFAI");
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u8(), 2);
    }
}
