//! JSON text serialization (compact and pretty).

use crate::{Error, Value};
use std::fmt::Write;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, colon): (&str, String, String, &str) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (level + 1)),
            " ".repeat(width * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(out, key);
                out.push_str(colon);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = crate::json!({"a": [1, "x"], "b": {"c": null}});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,"x"],"b":{"c":null}}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    \"x\"\n  ]"));
    }

    #[test]
    fn escapes_control_characters() {
        let v = crate::json!({"s": "line\none\t\"quoted\""});
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"line\none\t\"quoted\""}"#);
    }
}
