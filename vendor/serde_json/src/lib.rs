//! Offline stand-in for `serde_json`.
//!
//! The workspace uses `serde_json` only to build JSON artifacts in memory
//! (`json!`, [`Value`]) and serialize them ([`to_string`] /
//! [`to_string_pretty`]); nothing derives `Serialize`. This stand-in covers
//! exactly that surface with no serde dependency.

mod macros;
mod ser;
mod value;

pub use ser::{to_string, to_string_pretty};
pub use value::{Map, Number, ToValue, Value};

/// Serialization error (this stand-in is infallible; the type exists so the
/// `Result` signatures match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}
