//! The JSON value model.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => {
                b >= 0 && a == b as u64
            }
            // Mixed int/float never compare equal, as in serde_json.
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// Shared null for out-of-range indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self).expect("infallible"))
    }
}

// ---- conversions --------------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

macro_rules! from_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

/// By-reference conversion used by the `json!` macro, mirroring serde_json's
/// `to_value(&expr)` semantics: building a value must not move out of the
/// expression (e.g. a `String` field reached through a shared reference).
pub trait ToValue {
    /// Build a [`Value`] without consuming `self`.
    fn to_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToValue for T {
    fn to_value(&self) -> Value {
        self.clone().into()
    }
}

// ---- comparisons with primitives (assert_eq! ergonomics) ----------------

macro_rules! eq_via_from {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                *self == Value::from(other.clone())
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                Value::from(self.clone()) == *other
            }
        }
    )*};
}

eq_via_from!(bool, f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, String);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"][3]["deeper"].is_null());
    }

    #[test]
    fn primitive_equality() {
        assert_eq!(Value::from(0.52), 0.52);
        assert_eq!(Value::from(1u64), 1);
        assert_eq!(Value::from("x"), "x");
        assert_ne!(Value::from(1u64), 1.0);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("b".into(), Value::from(1));
        m.insert("a".into(), Value::from(2));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
    }
}
