//! The `json!` macro: a tt-muncher modeled on serde_json's, specialized to
//! the forms this workspace uses (string-literal keys, nested objects and
//! arrays, arbitrary expression values including nested `json!` calls).

/// Build a [`crate::Value`] from JSON-like syntax.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////// arrays ////////////

    // Done with trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is an array.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    // Next element is an object.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// objects ////////////

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).into(), $value);
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is an object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////// primary ////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            #[allow(unused_mut)]
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::ToValue::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn nested_objects_arrays_and_expressions() {
        let xs = vec![1u64, 2, 3];
        let v = crate::json!({
            "a": 1,
            "b": { "c": [1, 2.5, "three", null], "d": {} },
            "sum": xs.iter().map(|x| x * 2).sum::<u64>(),
            "items": xs.iter().map(|x| crate::json!({"x": *x})).collect::<Vec<_>>(),
            "maybe": Option::<u64>::None,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"]["c"][1], 2.5);
        assert_eq!(v["b"]["c"][2], "three");
        assert!(v["b"]["c"][3].is_null());
        assert_eq!(v["sum"], 12u64);
        assert_eq!(v["items"].as_array().unwrap().len(), 3);
        assert_eq!(v["items"][2]["x"], 3);
        assert!(v["maybe"].is_null());
    }

    #[test]
    fn bare_expression_and_literals() {
        assert_eq!(crate::json!("s"), "s");
        assert_eq!(crate::json!(7), 7);
        assert_eq!(crate::json!(null), Value::Null);
        assert_eq!(crate::json!(true), true);
        assert_eq!(crate::json!([]), Value::Array(vec![]));
    }
}
