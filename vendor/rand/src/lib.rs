//! Offline stand-in for the `rand` crate (0.8 line).
//!
//! The build container has no network access and no vendored registry, so the
//! workspace ships this minimal replica of the `rand` API surface it uses:
//! [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`)
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The implementation is deliberately **bit-faithful** to `rand 0.8` +
//! `rand_chacha 0.3`: `StdRng` is ChaCha12 with the same block/refill
//! structure, `seed_from_u64` uses the same PCG32 expansion, and the uniform
//! samplers use the same widening-multiply rejection scheme — so seeded
//! workloads generated here match what the real crate would have produced.

mod chacha;
pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::SampleUniform;

/// A random number generator core: the `rand_core::RngCore` subset.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator: the `rand_core::SeedableRng` subset.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32 stream the
    /// real `rand_core` uses so sequences match crates built against it.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (exclusive or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p == 1.0 {
            return true;
        }
        // Identical to rand 0.8's Bernoulli: compare 64 random bits against
        // the probability scaled to the full u64 range.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
