//! Sequence helpers: the `SliceRandom` subset (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Uniform index sampling, matching rand 0.8's `gen_index`: draws via `u32`
/// whenever the bound fits, which keeps the consumed stream identical.
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    // `&mut R` is `Sized` and forwards `RngCore`, so `Rng`'s `Sized`-bound
    // methods apply to it even when `R` itself is unsized; name that
    // receiver explicitly since method probing would pick `R`.
    let mut rng = &mut *rng;
    if ubound <= u32::MAX as usize {
        <&mut R as Rng>::gen_range(&mut rng, 0..ubound as u32) as usize
    } else {
        <&mut R as Rng>::gen_range(&mut rng, 0..ubound)
    }
}

/// Randomized slice operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "a 50-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_is_none_only_when_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
    }
}
