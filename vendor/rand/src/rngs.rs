//! Named generators.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha12, exactly as in `rand 0.8`.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: ChaCha12,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        StdRng { core: ChaCha12::from_seed(seed) }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.core.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-at-a-time fill; sufficient for the workspace (no direct users).
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.0f64..1.5);
            assert!((0.0..1.5).contains(&z));
            let b = rng.gen_range(1u8..13);
            assert!((1..13).contains(&b));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
