//! ChaCha12 block generator matching `rand_chacha 0.3`.
//!
//! The state layout, 64-bit block counter, four-block refill, and
//! `BlockRng`-style `next_u32`/`next_u64` consumption all mirror the real
//! crate so that `StdRng::seed_from_u64(s)` yields identical streams.

const BLOCK_WORDS: usize = 16;
/// Four ChaCha blocks per refill, like rand_chacha's wide backend.
const BUFFER_WORDS: usize = 4 * BLOCK_WORDS;

#[derive(Clone, Debug)]
pub(crate) struct ChaCha12 {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Stream id (state words 14–15); always zero for `StdRng::from_seed`.
    stream: u64,
    /// Decoded output buffer: four consecutive blocks.
    results: [u32; BUFFER_WORDS],
    /// Read cursor into `results`; starts saturated to force a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12 {
    pub(crate) fn from_seed(seed: [u8; 32]) -> ChaCha12 {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12 {
            key,
            counter: 0,
            stream: 0,
            results: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }

    fn block(&self, counter: u64) -> [u32; BLOCK_WORDS] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let initial = state;
        // 12 rounds = 6 double rounds (column + diagonal).
        for _ in 0..6 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        state
    }

    fn refill(&mut self, index: usize) {
        for blk in 0..4 {
            let words = self.block(self.counter.wrapping_add(blk as u64));
            self.results[blk * BLOCK_WORDS..(blk + 1) * BLOCK_WORDS].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = index;
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    /// Two-word read with the exact `BlockRng::next_u64` edge-case handling.
    pub(crate) fn next_u64(&mut self) -> u64 {
        let read = |results: &[u32; BUFFER_WORDS], i: usize| {
            u64::from(results[i + 1]) << 32 | u64::from(results[i])
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.refill(2);
            read(&self.results, 0)
        } else {
            // One word left: combine it with the first word of the next
            // buffer, low word first.
            let x = u64::from(self.results[BUFFER_WORDS - 1]);
            self.refill(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed, same stream — and interleaving u32/u64 reads follows the
    /// BlockRng word-consumption rules (u64 = two consecutive u32 words).
    #[test]
    fn u64_reads_consume_u32_word_pairs() {
        let mut words = ChaCha12::from_seed([0u8; 32]);
        let a = words.next_u32();
        let b = words.next_u32();
        let mut wide = ChaCha12::from_seed([0u8; 32]);
        assert_eq!(wide.next_u64(), u64::from(b) << 32 | u64::from(a));
    }

    #[test]
    fn counter_advances_across_refills() {
        let mut rng = ChaCha12::from_seed([7u8; 32]);
        let first: Vec<u32> = (0..BUFFER_WORDS + 8).map(|_| rng.next_u32()).collect();
        let mut rng2 = ChaCha12::from_seed([7u8; 32]);
        let second: Vec<u32> = (0..BUFFER_WORDS + 8).map(|_| rng2.next_u32()).collect();
        assert_eq!(first, second);
        // All words are not identical (the stream varies per block).
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
