//! Distributions: `Standard` plus the uniform samplers behind `gen_range`.
//!
//! The integer path reproduces rand 0.8's `sample_single_inclusive`
//! (widening multiply + zone rejection); the float path reproduces
//! `UniformFloat::sample_single` (random mantissa in `[1, 2)` scaled into the
//! range). Sequences therefore match the real crate bit for bit.

use crate::{Rng, RngCore};

/// A sampling distribution over `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full-range integers, `[0, 1)` floats, fair
/// bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Compare against the most significant bit, as rand does.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform-range sampling support.
pub mod uniform {
    use super::*;

    /// Types that can be sampled uniformly from a range via `gen_range`.
    pub trait SampleUniform: Sized {
        /// Sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self;
    }

    /// Range argument accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "gen_range: empty range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    /// Widening multiply returning `(hi, lo)`.
    trait WideningMul: Copy {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    impl WideningMul for u32 {
        fn wmul(self, other: u32) -> (u32, u32) {
            let t = u64::from(self) * u64::from(other);
            ((t >> 32) as u32, t as u32)
        }
    }

    impl WideningMul for u64 {
        fn wmul(self, other: u64) -> (u64, u64) {
            let t = u128::from(self) * u128::from(other);
            ((t >> 64) as u64, t as u64)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    let range =
                        (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1)
                            as $u_large;
                    if range == 0 {
                        // The full integer domain: any sample is in range.
                        let wide: $u_large = Standard.sample(rng);
                        return wide as $ty;
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                        // Small domains use exact modulus rejection.
                        let ints_to_reject =
                            (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = Standard.sample(rng);
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl! { u8, u8, u32 }
    uniform_int_impl! { u16, u16, u32 }
    uniform_int_impl! { u32, u32, u32 }
    uniform_int_impl! { u64, u64, u64 }
    uniform_int_impl! { usize, usize, u64 }
    uniform_int_impl! { i8, u8, u32 }
    uniform_int_impl! { i16, u16, u32 }
    uniform_int_impl! { i32, u32, u32 }
    uniform_int_impl! { i64, u64, u64 }
    uniform_int_impl! { isize, usize, u64 }

    impl SampleUniform for f64 {
        fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
            let scale = high - low;
            loop {
                // 52 random mantissa bits with exponent 0 give [1, 2).
                let value1_2 =
                    f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: f64,
            high: f64,
            rng: &mut R,
        ) -> f64 {
            let scale = high - low;
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            (value1_2 - 1.0) * scale + low
        }
    }

    impl SampleUniform for f32 {
        fn sample_single<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
            let scale = high - low;
            loop {
                let value1_2 =
                    f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
                let res = (value1_2 - 1.0) * scale + low;
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: f32,
            high: f32,
            rng: &mut R,
        ) -> f32 {
            let scale = high - low;
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            (value1_2 - 1.0) * scale + low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn small_int_ranges_cover_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
