//! Offline stand-in for `proptest`.
//!
//! Runs each property a configurable number of times against inputs drawn
//! from [`Strategy`] values with a deterministic per-test seed (derived from
//! the test name and case index), so failures reproduce exactly. There is no
//! shrinking: the failing input is printed as-is. The supported strategy
//! surface is what this workspace uses — integer/float ranges, a regex
//! subset for strings, `any`, `Just`, `prop_oneof!`, `prop_map`, tuples, and
//! `collection::vec`.

pub mod collection;
pub mod regex;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Failure description.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Common imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Define property tests.
#[macro_export]
macro_rules! proptest {
    // Internal rule first: the public catch-all below would otherwise
    // re-match `@tests ...` invocations and recurse forever.
    (@tests ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                // Draw every input before running the body, so the value
                // report below always has the full assignment.
                let inputs = ($($crate::Strategy::generate(&$strategy, &mut rng),)+);
                let ($($arg,)+) = inputs.clone();
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {:?}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property, failing the case (not panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

/// Choose among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
