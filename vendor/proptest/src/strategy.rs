//! Value-generation strategies.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Clone + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

/// Strategy for the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole domain of `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one variant.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// String patterns act as strategies over matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::regex::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = case_rng("ranges_stay_in_bounds", 0);
        for _ in 0..200 {
            let v = (10u8..14).generate(&mut rng);
            assert!((10..14).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_variants() {
        let s = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = case_rng("oneof_covers_all_variants", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = ((1u8..3), (10u8..12)).prop_map(|(a, b)| u16::from(a) * 100 + u16::from(b));
        let mut rng = case_rng("map_and_tuples_compose", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 110 || v == 111 || v == 210 || v == 211, "{v}");
        }
    }
}
