//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` of values from `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn vec_length_in_range() {
        let s = vec(0u8..4, 0..40);
        let mut rng = case_rng("vec_length_in_range", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 40);
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
