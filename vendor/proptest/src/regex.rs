//! Generation from a small regex subset: sequences of literal characters,
//! `.`, and `[...]` character classes (with `a-z` ranges and a literal
//! trailing `-`), each optionally quantified with `{m}` or `{m,n}`.

use rand::rngs::StdRng;
use rand::Rng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// What `.` can produce: printable ASCII plus a few multibyte characters so
/// string handling gets exercised beyond one-byte encodings.
fn dot_choices() -> Vec<char> {
    let mut choices: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    choices.extend(['é', 'Ω', 'λ', '→', '中']);
    choices
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '.' => {
                i += 1;
                dot_choices()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing backslash in {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.parse().expect("bad quantifier"),
                    n.parse().expect("bad quantifier"),
                ),
                None => {
                    let m: usize = body.parse().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in {pattern:?}");
        assert!(!choices.is_empty(), "empty class in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn class_with_range_literals_and_trailing_dash() {
        let mut rng = case_rng("class_with_range_literals_and_trailing_dash", 0);
        for _ in 0..100 {
            let s = generate("[a-zA-Z0-9 .,-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .,-".contains(c)));
        }
    }

    #[test]
    fn concatenation_with_literal_separator() {
        let mut rng = case_rng("concatenation_with_literal_separator", 0);
        for _ in 0..50 {
            let s = generate("[b-df-hj-np-tv-xz]{4,10} [b-df-hj-np-tv-xz]{4,10}", &mut rng);
            let parts: Vec<&str> = s.split(' ').collect();
            assert_eq!(parts.len(), 2);
            for part in parts {
                assert!((4..=10).contains(&part.len()));
                assert!(part.chars().all(|c| "bcdfghjklmnpqrstvwxz".contains(c)));
            }
        }
    }

    #[test]
    fn dot_respects_bounds() {
        let mut rng = case_rng("dot_respects_bounds", 0);
        for _ in 0..100 {
            let s = generate(".{0,16}", &mut rng);
            assert!(s.chars().count() <= 16);
        }
    }
}
