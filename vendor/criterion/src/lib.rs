//! Offline stand-in for `criterion`.
//!
//! Provides the measurement API this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warm-up plus fixed number of timed samples with a mean/min/max report;
//! there is no statistical analysis, plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named benchmark, optionally parameterized.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// A function name plus parameter, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{function}/{}", self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), |b| f(b))
    }

    /// Run one benchmark over a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input))
    }

    /// Finish the group (reports are printed as benchmarks run).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut BenchmarkGroup {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample, then the timed ones.
        for timed in std::iter::once(false).chain(std::iter::repeat(true).take(self.sample_size)) {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if timed {
                samples.push(bencher.elapsed);
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id:<40} time: [{} {} {}]",
            self.name,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on a fresh untimed `setup()` product.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        // Warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("tiny").to_string(), "tiny");
    }
}
