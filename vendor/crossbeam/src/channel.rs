//! MPMC channels with crossbeam-compatible semantics.
//!
//! Bounded channels block senders when full; all receivers observing an
//! empty, sender-less channel see disconnection (and vice versa). Built on
//! `Mutex` + two `Condvar`s; capacity 0 (rendezvous) is not supported —
//! the workspace never uses it.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Create a bounded channel. `cap` must be at least 1: rendezvous channels
/// (capacity 0) are not supported by this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    with_cap(Some(cap))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match chan.state.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Send, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.chan);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match state.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = match self.chan.not_full.wait(state) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = lock(&self.chan);
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = state.cap {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.chan);
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = match self.chan.not_empty.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.chan);
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a relative timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Receive with an absolute deadline.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut state = lock(&self.chan);
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            state = match self.chan.not_empty.wait_timeout(state, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.chan).senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        lock(&self.chan).receivers += 1;
        Receiver { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan);
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(4);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
