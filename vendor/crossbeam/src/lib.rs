//! Offline stand-in for `crossbeam`, backed by the standard library.
//!
//! Provides the subset the workspace uses: [`scope`] (scoped threads on top
//! of `std::thread::scope`) and [`channel`] (a Mutex+Condvar MPMC channel
//! with crossbeam's bounded/unbounded semantics and disconnect behavior).

pub mod channel;

/// Scoped-thread handle passed to [`scope`] closures.
///
/// A thin wrapper over `std::thread::Scope`; `spawn` hands the closure a
/// reference to the same scope so nested spawning works as in crossbeam.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before this
/// returns. Unlike crossbeam, a panicking child propagates the panic when the
/// scope joins rather than surfacing it in the `Err` payload list — callers
/// in this workspace `expect` success either way.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
