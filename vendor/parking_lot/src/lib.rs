//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace has no network access, so this crate provides the
//! `parking_lot` API subset it uses — `Mutex`/`MutexGuard` and
//! `RwLock`/guards — on top of the standard library. Poisoning is absorbed
//! (`parking_lot` has none): a panicked holder does not poison the lock for
//! everyone else.

use std::sync;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// `lock()` returns the guard directly, never a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A readers-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
